/// Unit tests for the edge-partitioner strategies themselves — pure
/// place() passes, no distributed build involved.  The builder-level
/// invariants (chains, exactly-once ownership) live in
/// partition_property_test.cpp; here we pin the per-scheme behavior:
/// determinism, range, edge_list's exact floor/ceil split, DBH's hub
/// spreading and orientation co-location, HDRF's λ balance knob, and
/// SNE's capacity bound.
#include "graph/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "gen/generators.hpp"
#include "graph/partition_metrics.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace sfg::graph {
namespace {

using gen::edge64;

/// Sorted deduped symmetric stream, the form partitioners see.
std::vector<edge64> cleaned_stream(std::vector<edge64> edges) {
  gen::symmetrize(edges);
  std::erase_if(edges, [](const edge64& e) { return e.src == e.dst; });
  std::sort(edges.begin(), edges.end(), gen::by_src_dst{});
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<edge64> rmat_stream() {
  gen::rmat_config rc{.scale = 7, .edge_factor = 8, .seed = 909};
  return cleaned_stream(gen::rmat_slice(rc, 0, rc.num_edges()));
}

std::vector<edge64> star_stream(std::uint64_t leaves) {
  std::vector<edge64> edges;
  for (std::uint64_t t = 1; t <= leaves; ++t) edges.push_back({0, t});
  return cleaned_stream(edges);
}

TEST(PartitionerNames, RoundTrip) {
  for (const partitioner_kind k : kAllPartitioners) {
    const auto parsed = parse_partitioner(partitioner_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
    EXPECT_EQ(make_partitioner({.kind = k})->kind(), k);
  }
  EXPECT_FALSE(parse_partitioner("metis").has_value());
  EXPECT_FALSE(parse_partitioner("").has_value());
}

class PlaceInvariants
    : public ::testing::TestWithParam<partitioner_kind> {};

TEST_P(PlaceInvariants, DeterministicAndInRange) {
  const auto stream = rmat_stream();
  const auto part = make_partitioner({.kind = GetParam()});
  for (const int p : {1, 3, 4, 8}) {
    const auto a = part->place(stream, p);
    const auto b = part->place(stream, p);
    ASSERT_EQ(a.size(), stream.size());
    EXPECT_EQ(a, b) << "place() must be deterministic (the streamed "
                       "builder replicates it per rank)";
    for (const int r : a) {
      ASSERT_GE(r, 0);
      ASSERT_LT(r, p);
    }
  }
}

TEST_P(PlaceInvariants, EmptyStream) {
  const auto part = make_partitioner({.kind = GetParam()});
  EXPECT_TRUE(part->place({}, 4).empty());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PlaceInvariants,
                         ::testing::ValuesIn(kAllPartitioners),
                         [](const auto& info) {
                           return std::string(partitioner_name(info.param));
                         });

TEST(EdgeListPartitioner, MatchesClosedFormSplit) {
  const auto stream = rmat_stream();
  const auto part = make_partitioner({.kind = partitioner_kind::edge_list});
  for (const int p : {1, 3, 7, 16}) {
    const auto a = part->place(stream, p);
    // Contiguous non-decreasing chunks...
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    // ...whose sizes are exactly the closed-form floor/ceil counts.
    EXPECT_EQ(edges_per_partition_assigned(a, p),
              edges_per_partition_edge_list(stream.size(), p));
  }
}

TEST(DbhPartitioner, BothOrientationsCoLocate) {
  // DBH keys on the endpoint pair, so (u,v) and (v,u) of the symmetrized
  // stream must land on the same rank — otherwise an undirected edge
  // would be stored under two different owners.
  const auto stream = rmat_stream();
  const auto a =
      make_partitioner({.kind = partitioner_kind::dbh})->place(stream, 8);
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> where;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto key = std::minmax(stream[i].src, stream[i].dst);
    const auto [it, inserted] = where.emplace(key, a[i]);
    EXPECT_EQ(it->second, a[i])
        << "edge {" << stream[i].src << "," << stream[i].dst << "}";
  }
}

TEST(DbhPartitioner, StarHubSpreadsAcrossRanks) {
  // Every star edge has the hub as its high-degree endpoint, so DBH
  // hashes by the leaves — the hub's adjacency scatters over many ranks
  // (the whole point: replicate hubs, not leaves) while each leaf stays
  // on exactly one rank.
  const int p = 8;
  const auto stream = star_stream(512);
  const auto a =
      make_partitioner({.kind = partitioner_kind::dbh})->place(stream, p);
  const auto rep = replication_from_assignment(stream, a, p);
  std::vector<bool> hub_on(static_cast<std::size_t>(p), false);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stream[i].src == 0 || stream[i].dst == 0) {
      hub_on[static_cast<std::size_t>(a[i])] = true;
    }
  }
  EXPECT_EQ(std::count(hub_on.begin(), hub_on.end(), true), p)
      << "512 leaves hashed over 8 ranks should hit every rank";
  // Exactly one split (chain) vertex: the hub.
  EXPECT_EQ(rep.split_vertices, 1u);
}

TEST(HdrfPartitioner, LambdaTradesReplicationForBalance) {
  const int p = 8;
  const auto stream = rmat_stream();
  const auto greedy = replication_from_assignment(
      stream,
      make_partitioner({.kind = partitioner_kind::hdrf, .hdrf_lambda = 0.05})
          ->place(stream, p),
      p);
  const auto balanced = replication_from_assignment(
      stream,
      make_partitioner({.kind = partitioner_kind::hdrf, .hdrf_lambda = 10.0})
          ->place(stream, p),
      p);
  // Larger λ weights the balance term harder: load imbalance must not
  // get worse, replication must not get better (the trade-off knob).
  EXPECT_LE(balanced.imbalance, greedy.imbalance);
  EXPECT_GE(balanced.endpoint_rf, greedy.endpoint_rf);
  // And the default λ=1 keeps the bottleneck within a sane multiple of
  // the mean (the CIKM'15 headline property).
  const auto def = replication_from_assignment(
      stream, make_partitioner({.kind = partitioner_kind::hdrf})->place(stream, p),
      p);
  EXPECT_LT(def.imbalance, 2.0);
}

TEST(SnePartitioner, RespectsCapacity) {
  const auto stream = rmat_stream();
  for (const int p : {2, 4, 8}) {
    for (const std::uint64_t cache : {std::uint64_t{0}, std::uint64_t{64}}) {
      const auto a = make_partitioner(
                         {.kind = partitioner_kind::sne, .sne_cache_edges = cache})
                         ->place(stream, p);
      const auto counts = edges_per_partition_assigned(a, p);
      const std::uint64_t cap = util::div_ceil(
          stream.size(), static_cast<std::uint64_t>(p));
      for (int r = 0; r < p; ++r) {
        EXPECT_LE(counts[static_cast<std::size_t>(r)], cap)
            << "rank " << r << " over capacity (p=" << p << ")";
      }
      // Expansion actually fills: no rank starves while others overflow.
      EXPECT_EQ(std::accumulate(counts.begin(), counts.end(),
                                std::uint64_t{0}),
                stream.size());
    }
  }
}

TEST(SnePartitioner, PathStaysContiguousPerRank) {
  // On a path graph, neighbor expansion from a boundary set should carve
  // the chain into few runs — each rank's vertex set is one or two
  // contiguous stretches, far below hash-scatter levels.  Probe the
  // community-preserving claim cheaply via endpoint replication: cuts
  // between ranks are where replicas appear.
  std::vector<edge64> edges;
  for (std::uint64_t v = 0; v < 400; ++v) edges.push_back({v, v + 1});
  const auto stream = cleaned_stream(std::move(edges));
  const int p = 4;
  const auto sne = replication_from_assignment(
      stream, make_partitioner({.kind = partitioner_kind::sne})->place(stream, p),
      p);
  const auto dbh = replication_from_assignment(
      stream, make_partitioner({.kind = partitioner_kind::dbh})->place(stream, p),
      p);
  EXPECT_LT(sne.endpoint_rf, dbh.endpoint_rf)
      << "expansion should cut a path far less than hashing does";
}

}  // namespace
}  // namespace sfg::graph
