#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/kcore.hpp"
#include "gen/generators.hpp"
#include "reference/serial_graph.hpp"
#include "runtime/runtime.hpp"

namespace sfg::graph {
namespace {

using gen::edge64;
using runtime::comm;
using runtime::launch;

TEST(Subgraph, KCoreExtractionMatchesSerial) {
  // Full pipeline: k-core decompose, extract the core's induced edges,
  // rebuild a distributed graph from them, and verify it equals the
  // serial reference's induced subgraph.
  gen::rmat_config rc{.scale = 8, .edge_factor = 8, .seed = 71};
  const auto edges = gen::rmat_slice(rc, 0, rc.num_edges());
  constexpr std::uint32_t kK = 6;

  const auto ref = reference::serial_graph::from_edges(edges);
  const auto alive = reference::serial_kcore(ref, kK);
  // Serial induced edge list of the core.
  std::vector<edge64> expected;
  for (std::uint64_t u = 0; u < ref.num_vertices(); ++u) {
    if (!alive[u]) continue;
    for (const auto v : ref.neighbors(u)) {
      if (alive[v]) expected.push_back({u, v});
    }
  }
  std::sort(expected.begin(), expected.end(), gen::by_src_dst{});
  ASSERT_FALSE(expected.empty());

  launch(4, [&](comm& c) {
    const auto range = gen::slice_for_rank(edges.size(), c.rank(), 4);
    std::vector<edge64> mine(
        edges.begin() + static_cast<std::ptrdiff_t>(range.begin),
        edges.begin() + static_cast<std::ptrdiff_t>(range.end));
    auto g = build_in_memory_graph(c, mine, {});
    auto core = core::run_kcore(g, kK, {});

    auto sub_edges = extract_induced_edges(g, [&](std::size_t s) {
      return core.state.local(s).alive;
    });
    auto all = c.all_gatherv(std::span<const edge64>(sub_edges), nullptr);
    std::sort(all.begin(), all.end(), gen::by_src_dst{});
    EXPECT_EQ(all, expected);

    // Rebuild: every vertex of the new graph has degree >= k.
    graph_build_config gcfg;
    gcfg.undirected = false;  // extraction already emitted both directions
    auto core_graph = build_in_memory_graph(c, sub_edges, gcfg);
    EXPECT_EQ(core_graph.total_edges(), expected.size());
    for (std::size_t s = 0; s < core_graph.num_slots(); ++s) {
      if (core_graph.is_master(s)) {
        EXPECT_GE(core_graph.degree_of(s), kK);
      }
    }
  });
}

TEST(Subgraph, KeepNothingYieldsEmpty) {
  launch(2, [](comm& c) {
    std::vector<edge64> mine;
    if (c.rank() == 0) mine = {{0, 1}, {1, 2}};
    auto g = build_in_memory_graph(c, mine, {});
    auto sub = extract_induced_edges(g, [](std::size_t) { return false; });
    EXPECT_TRUE(sub.empty());
  });
}

TEST(Subgraph, KeepEverythingReproducesGraph) {
  gen::rmat_config rc{.scale = 6, .edge_factor = 8, .seed = 72};
  const auto edges = gen::rmat_slice(rc, 0, rc.num_edges());
  const auto ref = reference::serial_graph::from_edges(edges);
  launch(3, [&](comm& c) {
    const auto range = gen::slice_for_rank(edges.size(), c.rank(), 3);
    std::vector<edge64> mine(
        edges.begin() + static_cast<std::ptrdiff_t>(range.begin),
        edges.begin() + static_cast<std::ptrdiff_t>(range.end));
    auto g = build_in_memory_graph(c, mine, {});
    auto sub = extract_induced_edges(g, [](std::size_t) { return true; });
    const auto total = c.all_reduce(
        static_cast<std::uint64_t>(sub.size()), std::plus<>());
    EXPECT_EQ(total, ref.num_edges());
  });
}

TEST(Subgraph, SplitHubSlicesEmitExactlyOnce) {
  // Hub spanning partitions: each slice emits its own part; the union
  // must contain each hub edge exactly once.
  std::vector<edge64> edges;
  for (std::uint64_t t = 1; t <= 200; ++t) edges.push_back({0, t});
  launch(4, [&](comm& c) {
    const auto range = gen::slice_for_rank(edges.size(), c.rank(), 4);
    std::vector<edge64> mine(
        edges.begin() + static_cast<std::ptrdiff_t>(range.begin),
        edges.begin() + static_cast<std::ptrdiff_t>(range.end));
    auto g = build_in_memory_graph(c, mine, {});
    ASSERT_FALSE(g.split_table().empty());
    auto sub = extract_induced_edges(g, [](std::size_t) { return true; });
    auto all = c.all_gatherv(std::span<const edge64>(sub), nullptr);
    std::sort(all.begin(), all.end(), gen::by_src_dst{});
    EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
    EXPECT_EQ(all.size(), 400u);  // both directions of 200 edges
  });
}

}  // namespace
}  // namespace sfg::graph
