#include "graph/vertex_locator.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sfg::graph {
namespace {

TEST(VertexLocator, PacksAndUnpacks) {
  const vertex_locator v(12, 0x123456789aULL);
  EXPECT_EQ(v.owner(), 12);
  EXPECT_EQ(v.local_id(), 0x123456789aULL);
  EXPECT_TRUE(v.valid());
}

TEST(VertexLocator, MaxFieldsFit) {
  const vertex_locator v(0xfffe, (std::uint64_t{1} << 48) - 2);
  EXPECT_EQ(v.owner(), 0xfffe);
  EXPECT_EQ(v.local_id(), (std::uint64_t{1} << 48) - 2);
}

TEST(VertexLocator, DefaultIsInvalid) {
  const vertex_locator v;
  EXPECT_FALSE(v.valid());
  EXPECT_EQ(v, vertex_locator::invalid());
}

TEST(VertexLocator, OrderIsOwnerMajor) {
  // Total order: owner first, then local id — replicas and masters agree
  // on triangle-order comparisons with no communication.
  EXPECT_LT(vertex_locator(0, 100), vertex_locator(1, 0));
  EXPECT_LT(vertex_locator(3, 5), vertex_locator(3, 6));
  EXPECT_GT(vertex_locator(4, 0), vertex_locator(3, 999));
}

TEST(VertexLocator, BitsRoundTrip) {
  const vertex_locator v(7, 42);
  EXPECT_EQ(vertex_locator::from_bits(v.bits()), v);
}

TEST(VertexLocator, HashSpreads) {
  vertex_locator_hash h;
  std::unordered_set<std::size_t> hashes;
  for (int owner = 0; owner < 8; ++owner) {
    for (std::uint64_t id = 0; id < 100; ++id) {
      hashes.insert(h(vertex_locator(owner, id)));
    }
  }
  EXPECT_EQ(hashes.size(), 800u);
}

}  // namespace
}  // namespace sfg::graph
