#include "io/blueprint_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "core/bfs.hpp"
#include "core/test_helpers.hpp"
#include "gen/generators.hpp"
#include "graph/distributed_graph.hpp"
#include "reference/serial_graph.hpp"
#include "runtime/runtime.hpp"

namespace sfg::io {
namespace {

using gen::edge64;
using runtime::comm;
using runtime::launch;

std::string tmp_base(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void remove_checkpoints(const std::string& base, int p) {
  for (int r = 0; r < p; ++r) {
    std::filesystem::remove(blueprint_path(base, r));
  }
}

bool blueprints_equal(const graph::partition_blueprint& a,
                      const graph::partition_blueprint& b) {
  if (a.rank != b.rank || a.p != b.p ||
      a.total_vertices != b.total_vertices ||
      a.total_edges != b.total_edges || a.num_sources != b.num_sources ||
      a.num_sinks != b.num_sinks || a.csr_offsets != b.csr_offsets ||
      a.adj_bits != b.adj_bits || a.adj_weight != b.adj_weight ||
      a.slot_global_id != b.slot_global_id ||
      a.slot_locator_bits != b.slot_locator_bits ||
      a.slot_degree != b.slot_degree ||
      a.ghost_locator_bits != b.ghost_locator_bits ||
      a.directory != b.directory ||
      a.split_table.size() != b.split_table.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.split_table.size(); ++i) {
    const auto& x = a.split_table[i];
    const auto& y = b.split_table[i];
    if (x.global_id != y.global_id || x.locator_bits != y.locator_bits ||
        x.global_degree != y.global_degree || x.owners != y.owners) {
      return false;
    }
  }
  return true;
}

TEST(BlueprintIo, RoundTripPreservesEverything) {
  const auto base = tmp_base("sfg_bp_rt");
  gen::rmat_config rc{.scale = 8, .edge_factor = 8, .seed = 21};
  launch(4, [&](comm& c) {
    const auto range = gen::slice_for_rank(rc.num_edges(), c.rank(), 4);
    graph::graph_build_config gcfg;
    gcfg.num_ghosts = 16;
    gcfg.make_weights = true;
    auto bp = graph::build_partition(
        c, gen::rmat_slice(rc, range.begin, range.end), gcfg);
    save_blueprints(c, base, bp);
    const auto loaded = load_blueprints(c, base);
    EXPECT_TRUE(blueprints_equal(bp, loaded));
    c.barrier();
  });
  remove_checkpoints(base, 4);
}

TEST(BlueprintIo, GraphFromCheckpointTraversesIdentically) {
  const auto base = tmp_base("sfg_bp_bfs");
  gen::rmat_config rc{.scale = 8, .edge_factor = 8, .seed = 22};
  const auto edges = gen::rmat_slice(rc, 0, rc.num_edges());
  const auto ref = reference::serial_graph::from_edges(edges);
  const auto expected = reference::serial_bfs(ref, edges.front().src);

  // Phase 1: build and checkpoint.
  launch(4, [&](comm& c) {
    const auto range = gen::slice_for_rank(edges.size(), c.rank(), 4);
    std::vector<edge64> mine(
        edges.begin() + static_cast<std::ptrdiff_t>(range.begin),
        edges.begin() + static_cast<std::ptrdiff_t>(range.end));
    const auto bp = graph::build_partition(c, mine, {});
    save_blueprints(c, base, bp);
    c.barrier();
  });

  // Phase 2: a fresh world reloads and traverses — no rebuild.
  launch(4, [&](comm& c) {
    auto bp = load_blueprints(c, base);
    graph::in_memory_edges store(bp.adj_bits);
    graph::distributed_graph<graph::in_memory_edges> g(c, std::move(bp),
                                                       std::move(store));
    auto result = core::run_bfs(g, g.locate(edges.front().src), {});
    const auto levels = core::testing::gather_global(
        c, g, [&](std::size_t s) { return result.state.local(s).level; });
    for (const auto& [gid, level] : levels) {
      ASSERT_EQ(level, expected[gid]);
    }
  });
  remove_checkpoints(base, 4);
}

TEST(BlueprintIo, WorldSizeMismatchRejected) {
  const auto base = tmp_base("sfg_bp_mismatch");
  launch(2, [&](comm& c) {
    auto bp = graph::build_partition(c, {{0, 1}, {1, 2}}, {});
    save_blueprints(c, base, bp);
    c.barrier();
  });
  EXPECT_THROW(
      launch(3, [&](comm& c) { (void)load_blueprints(c, base); }),
      std::runtime_error);
  remove_checkpoints(base, 2);
}

TEST(BlueprintIo, CorruptFileRejected) {
  const auto path = tmp_base("sfg_bp_corrupt") + ".rank0.sfg";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a blueprint";
  }
  EXPECT_THROW(load_blueprint(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(BlueprintIo, MissingFileRejected) {
  EXPECT_THROW(load_blueprint("/nonexistent/bp.rank0.sfg"),
               std::runtime_error);
}

}  // namespace
}  // namespace sfg::io
