#include "io/edge_list_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gen/generators.hpp"
#include "runtime/runtime.hpp"

namespace sfg::io {
namespace {

using gen::edge64;
using runtime::comm;
using runtime::launch;

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<edge64> sample_edges(std::size_t n) {
  gen::rmat_config cfg{.scale = 10, .edge_factor = 4, .seed = 3};
  return gen::rmat_slice(cfg, 0, n);
}

TEST(BinaryEdges, RoundTrip) {
  const auto path = tmp_path("sfg_bin_rt.bin");
  const auto edges = sample_edges(1000);
  write_binary_edges(path, edges);
  EXPECT_EQ(read_binary_edges(path), edges);
  std::filesystem::remove(path);
}

TEST(BinaryEdges, EmptyFile) {
  const auto path = tmp_path("sfg_bin_empty.bin");
  write_binary_edges(path, {});
  EXPECT_TRUE(read_binary_edges(path).empty());
  std::filesystem::remove(path);
}

TEST(BinaryEdges, RejectsCorruptSize) {
  const auto path = tmp_path("sfg_bin_bad.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "12345";  // 5 bytes: not a multiple of 16
  }
  EXPECT_THROW(read_binary_edges(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(BinaryEdges, MissingFileThrows) {
  EXPECT_THROW(read_binary_edges("/nonexistent/sfg.bin"),
               std::runtime_error);
}

class DistributedIoP : public ::testing::TestWithParam<int> {};

TEST_P(DistributedIoP, BinarySlicesCoverExactly) {
  const int p = GetParam();
  // Suffix by world size: ctest runs the parameterized instances
  // concurrently as separate processes, so a shared path is a collision.
  const auto path = tmp_path("sfg_bin_dist_" + std::to_string(p) + ".bin");
  const auto edges = sample_edges(1013);  // not divisible by p
  write_binary_edges(path, edges);
  launch(p, [&](comm& c) {
    const auto mine = read_binary_edges_distributed(c, path);
    const auto all = c.all_gatherv(std::span<const edge64>(mine), nullptr);
    EXPECT_EQ(all, edges);  // rank order concatenation == original file
  });
  std::filesystem::remove(path);
}

TEST_P(DistributedIoP, DistributedWriteReadRoundTrip) {
  const int p = GetParam();
  const auto path = tmp_path("sfg_bin_dwrite_" + std::to_string(p) + ".bin");
  launch(p, [&](comm& c) {
    // Each rank contributes a distinct, identifiable slice.
    std::vector<edge64> mine;
    for (int i = 0; i < 100 + c.rank(); ++i) {
      mine.push_back({static_cast<std::uint64_t>(c.rank()),
                      static_cast<std::uint64_t>(i)});
    }
    write_binary_edges_distributed(c, path, mine);
    const auto back = read_binary_edges(path);
    // File = concatenation in rank order.
    std::size_t off = 0;
    for (int r = 0; r < c.size(); ++r) {
      for (int i = 0; i < 100 + r; ++i) {
        ASSERT_EQ(back[off].src, static_cast<std::uint64_t>(r));
        ASSERT_EQ(back[off].dst, static_cast<std::uint64_t>(i));
        ++off;
      }
    }
    EXPECT_EQ(off, back.size());
    c.barrier();
  });
  std::filesystem::remove(path);
}

TEST_P(DistributedIoP, TextSlicesParseEveryLineOnce) {
  const int p = GetParam();
  const auto path = tmp_path("sfg_txt_dist_" + std::to_string(p) + ".txt");
  const auto edges = sample_edges(523);
  write_text_edges(path, edges);
  launch(p, [&](comm& c) {
    const auto mine = read_text_edges_distributed(c, path);
    auto all = c.all_gatherv(std::span<const edge64>(mine), nullptr);
    // Ranks may split lines unevenly but the multiset must be exact; the
    // boundary rule also preserves order of concatenation.
    EXPECT_EQ(all, edges);
  });
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, DistributedIoP,
                         ::testing::Values(1, 2, 3, 7, 8));

TEST(TextEdges, RoundTripWithCommentsAndBlanks) {
  const auto path = tmp_path("sfg_txt_rt.txt");
  {
    std::ofstream out(path);
    out << "# SNAP-style header\n";
    out << "% matrix-market-style comment\n";
    out << "\n";
    out << "1 2\n";
    out << "   3    4   \n";
    out << "5 6\n";
  }
  const auto edges = read_text_edges(path);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (gen::edge64{1, 2}));
  EXPECT_EQ(edges[1], (gen::edge64{3, 4}));
  EXPECT_EQ(edges[2], (gen::edge64{5, 6}));
  std::filesystem::remove(path);
}

TEST(TextEdges, WriteThenReadLarge) {
  const auto path = tmp_path("sfg_txt_large.txt");
  const auto edges = sample_edges(2000);
  write_text_edges(path, edges);
  EXPECT_EQ(read_text_edges(path), edges);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sfg::io
