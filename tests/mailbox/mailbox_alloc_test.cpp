/// Zero-per-record-allocation tests for the mailbox hot path (DESIGN.md
/// §8).  The overhaul's central memory claim: once arenas are warm,
///
///   - self-send + drain_local performs NO heap allocation per record —
///     records append into a flat arena and are delivered as span views;
///   - the remote path allocates per *packet* (one arena re-reserve after
///     each move-flush, plus transport bookkeeping), never per record.
///
/// This TU replaces global operator new/delete with counting versions so
/// the claim is testable (pattern from tests/obs/metrics_test.cpp).  The
/// replacement is linked into the whole test binary, which is fine: it
/// only counts, behavior is unchanged.
#include "mailbox/routed_mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>

#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sfg::mailbox {
namespace {

struct record24 {
  std::uint64_t a, b, c;
};

constexpr int kMailTag = 0;
constexpr int kRecordsPerRound = 64;

TEST(MailboxAlloc, LocalDrainSteadyStateAllocatesNothing) {
  runtime::world w(1);
  auto& c = w.rank_comm(0);
  routed_mailbox mb(c, {topology::direct, 1 << 16, kMailTag});
  record24 r{1, 2, 3};
  std::uint64_t sink = 0;
  auto round = [&] {
    for (int i = 0; i < kRecordsPerRound; ++i) {
      r.a = static_cast<std::uint64_t>(i);
      mb.send(0, runtime::as_bytes_of(r));
    }
    mb.drain_local([&](int, std::span<const std::byte> bytes) {
      sink += bytes.size();
    });
  };
  // Warm-up: the first rounds grow local_arena_ (and, via the mid-drain
  // swap, local_scratch_) to steady-state capacity.
  for (int i = 0; i < 4; ++i) round();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) round();
  const std::uint64_t delta =
      g_allocations.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0u) << "self-send/drain hot path allocated on the heap";
  EXPECT_EQ(sink, static_cast<std::uint64_t>(260) * kRecordsPerRound *
                      sizeof(record24));
}

TEST(MailboxAlloc, RemotePathAllocatesPerPacketNotPerRecord) {
  runtime::world w(2);
  auto& c0 = w.rank_comm(0);
  auto& c1 = w.rank_comm(1);
  routed_mailbox m0(c0, {topology::direct, 1 << 16, kMailTag});
  routed_mailbox m1(c1, {topology::direct, 1 << 16, kMailTag});
  record24 r{1, 2, 3};
  std::uint64_t sink = 0;
  auto round = [&] {
    for (int i = 0; i < kRecordsPerRound; ++i) {
      r.a = static_cast<std::uint64_t>(i);
      m0.send(1, runtime::as_bytes_of(r));
    }
    m0.flush();
    runtime::message m;
    while (c1.try_recv(m)) {
      m1.process_packet(m, [&](int, std::span<const std::byte> bytes) {
        sink += bytes.size();
      });
    }
  };
  // Warm-up: lets the channel's reserve_hint converge on the real packet
  // size and the transport's inbox reach steady-state capacity.
  for (int i = 0; i < 8; ++i) round();

  constexpr int kRounds = 256;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < kRounds; ++i) round();
  const std::uint64_t delta =
      g_allocations.load(std::memory_order_relaxed) - before;

  // One packet per round.  Flushing moves the arena into the transport, so
  // each round legitimately re-allocates the arena once, and the transport
  // may allocate a constant amount of bookkeeping per message.  What must
  // NOT happen is an allocation per record: with 64 records per packet, a
  // per-record regression multiplies the budget ~16x.
  const std::uint64_t budget = static_cast<std::uint64_t>(kRounds) * 8;
  EXPECT_LE(delta, budget)
      << "remote path allocation is scaling with records, not packets";
  EXPECT_GT(sink, 0u);
}

// The traffic matrix must not change either claim.  Its rows are
// preallocated at mailbox construction and the latency histogram is a
// fixed bucket array, so with SFG_COMM_MATRIX on — even with every
// packet latency-sampled — the steady-state budgets are the same as
// with it off.
class MailboxMatrixAlloc : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_comm_matrix_enabled(true);
    obs::set_comm_lat_sample(1);  // stamp every packet: worst case
  }
  void TearDown() override {
    obs::set_comm_matrix_enabled(false);
    obs::set_comm_lat_sample(1);
  }
};

TEST_F(MailboxMatrixAlloc, LocalDrainStaysAllocationFree) {
  runtime::world w(1);
  auto& c = w.rank_comm(0);
  routed_mailbox mb(c, {topology::direct, 1 << 16, kMailTag});
  record24 r{1, 2, 3};
  std::uint64_t sink = 0;
  auto round = [&] {
    for (int i = 0; i < kRecordsPerRound; ++i) {
      r.a = static_cast<std::uint64_t>(i);
      mb.send(0, runtime::as_bytes_of(r));
    }
    mb.drain_local([&](int, std::span<const std::byte> bytes) {
      sink += bytes.size();
    });
  };
  for (int i = 0; i < 4; ++i) round();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) round();
  const std::uint64_t delta =
      g_allocations.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0u)
      << "traffic-matrix accounting allocated on the self-send hot path";
  EXPECT_GT(sink, 0u);
}

TEST_F(MailboxMatrixAlloc, RemotePathKeepsPerPacketBudget) {
  runtime::world w(2);
  auto& c0 = w.rank_comm(0);
  auto& c1 = w.rank_comm(1);
  routed_mailbox m0(c0, {topology::direct, 1 << 16, kMailTag});
  routed_mailbox m1(c1, {topology::direct, 1 << 16, kMailTag});
  record24 r{1, 2, 3};
  std::uint64_t sink = 0;
  auto round = [&] {
    for (int i = 0; i < kRecordsPerRound; ++i) {
      r.a = static_cast<std::uint64_t>(i);
      m0.send(1, runtime::as_bytes_of(r));
    }
    m0.flush();
    runtime::message m;
    while (c1.try_recv(m)) {
      m1.process_packet(m, [&](int, std::span<const std::byte> bytes) {
        sink += bytes.size();
      });
    }
  };
  for (int i = 0; i < 8; ++i) round();

  constexpr int kRounds = 256;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < kRounds; ++i) round();
  const std::uint64_t delta =
      g_allocations.load(std::memory_order_relaxed) - before;

  // Same budget as the matrix-off remote test: matrix rows and the
  // latency histogram are preallocated, stamping reads a clock, and the
  // receive side indexes into existing vectors.
  const std::uint64_t budget = static_cast<std::uint64_t>(kRounds) * 8;
  EXPECT_LE(delta, budget)
      << "traffic-matrix accounting is allocating per packet or per record";
  EXPECT_GT(sink, 0u);
}

}  // namespace
}  // namespace sfg::mailbox
