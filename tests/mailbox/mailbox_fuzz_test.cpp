/// Serialization fuzz tests for the routed mailbox's wire format and its
/// packet-sequence deduplication.
///
///   - Round trip: records of every interesting size — 0 bytes, one byte,
///     header-boundary sizes, and a 1 MiB oversized record that exceeds
///     the aggregation watermark on its own — survive framing, flushing
///     and unpacking byte for byte.
///   - Robustness: a structurally corrupt packet (truncated anywhere,
///     lying record length, out-of-range destination) is rejected whole,
///     counted in stats().packets_rejected, and — critically — does NOT
///     consume its sequence number, so an intact retransmission of the
///     same packet still delivers.
///   - Dedup equivalence: seq_window (the O(1) sliding-window structure
///     that replaced the per-source unordered_set of every seq ever seen)
///     gives verdicts identical to the reference set under seeded
///     reorder/duplication schedules, including displacements far beyond
///     its bitmap width.  Exactness is a termination-safety requirement: a
///     false drop loses records forever and the traversal livelocks.
///   - End to end: an all-to-all exchange over a faulty transport
///     (delay/reorder/duplicate schedules from the chaos harness) still
///     delivers every record exactly once.
#include "mailbox/routed_mailbox.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <unordered_set>
#include <vector>

#include "chaos/chaos_harness.hpp"
#include "mailbox/seq_window.hpp"
#include "runtime/runtime.hpp"
#include "util/chaos.hpp"

namespace sfg::mailbox {
namespace {

constexpr int kMailTag = 0;

std::vector<std::byte> pattern_record(std::size_t size, std::uint64_t salt) {
  std::vector<std::byte> r(size);
  for (std::size_t i = 0; i < size; ++i) {
    r[i] = static_cast<std::byte>(util::splitmix64(salt + i) & 0xff);
  }
  return r;
}

TEST(MailboxFuzz, RoundTripsEverySizeIncludingZeroAndOversized) {
  runtime::world w(2);
  auto& c0 = w.rank_comm(0);
  auto& c1 = w.rank_comm(1);
  routed_mailbox m0(c0, {topology::direct, 1 << 13, kMailTag});
  routed_mailbox m1(c1, {topology::direct, 1 << 13, kMailTag});

  // 1 MiB exceeds the aggregation watermark alone; 0 is a legal record.
  const std::size_t sizes[] = {0,  1,  7,   8,    9,    24,  255,
                               256, 4095, 4096, 1u << 20};
  std::vector<std::vector<std::byte>> sent;
  std::uint64_t salt = 1;
  for (const std::size_t n : sizes) {
    sent.push_back(pattern_record(n, salt++));
    m0.send(1, sent.back());
  }
  m0.flush();

  std::vector<std::vector<std::byte>> got;
  runtime::message m;
  while (c1.try_recv(m)) {
    m1.process_packet(m, [&](int origin, std::span<const std::byte> bytes) {
      EXPECT_EQ(origin, 0);
      got.emplace_back(bytes.begin(), bytes.end());
    });
  }
  ASSERT_EQ(got.size(), sent.size());
  // Aggregation preserves per-channel FIFO order, so compare in order.
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i], sent[i]) << "record " << i << " corrupted in transit";
  }

  // Self-delivery round-trips the same sizes through the local arena.
  std::vector<std::vector<std::byte>> self_got;
  for (const auto& r : sent) m1.send(1, r);
  m1.drain_local([&](int, std::span<const std::byte> bytes) {
    self_got.emplace_back(bytes.begin(), bytes.end());
  });
  EXPECT_EQ(self_got, sent);
}

/// Build a valid single-packet payload by running records through a real
/// mailbox and capturing what it puts on the wire.
std::vector<std::byte> capture_packet(std::uint64_t salt) {
  runtime::world w(2);
  auto& c0 = w.rank_comm(0);
  routed_mailbox m0(c0, {topology::direct, 1 << 16, kMailTag});
  for (const std::size_t n : {0u, 24u, 3u, 100u}) {
    const auto r = pattern_record(n, salt++);
    m0.send(1, r);
  }
  m0.flush();
  runtime::message m;
  EXPECT_TRUE(w.rank_comm(1).try_recv(m));
  return m.payload;
}

TEST(MailboxFuzz, TruncatedPacketsRejectedWithoutConsumingSeq) {
  const std::vector<std::byte> intact = capture_packet(99);
  runtime::world w(2);
  auto& c1 = w.rank_comm(1);
  routed_mailbox m1(c1, {topology::direct, 1 << 16, kMailTag});

  auto count_only = [](int, std::span<const std::byte>) {};

  // Every proper prefix shorter than the full packet is structurally
  // invalid here (the last record's bytes are missing) — except prefixes
  // that happen to end exactly on a record boundary, which form valid
  // shorter packets.  Stamp each crafted prefix with its own unique
  // sequence number so a boundary-valid prefix consumes *its* seq, never
  // the intact packet's seq 0.  Walk all cut points and assert no crash
  // and no delivery past a corrupt frame.
  std::uint64_t rejected = 0;
  for (std::size_t cut = 0; cut < intact.size(); ++cut) {
    runtime::message m;
    m.source = 0;
    m.tag = kMailTag;
    m.payload.assign(intact.begin(),
                     intact.begin() + static_cast<std::ptrdiff_t>(cut));
    if (cut >= sizeof(std::uint64_t)) {
      const std::uint64_t unique_seq = 1000 + cut;
      std::memcpy(m.payload.data(), &unique_seq, sizeof(unique_seq));
    }
    const auto before = m1.stats().packets_rejected;
    m1.process_packet(m, count_only);
    if (m1.stats().packets_rejected == before + 1) ++rejected;
  }
  // At minimum, every cut strictly inside a record header or body rejects
  // (only the handful of record-boundary cuts can pass validation).
  EXPECT_GT(rejected, intact.size() / 2);

  // A record header lying about its length (points past the end) rejects.
  {
    runtime::message m;
    m.source = 0;
    m.tag = kMailTag;
    m.payload = intact;
    // First record header starts after the 16-byte packet header (seq +
    // latency stamp); its size field is the u32 at offset 16 + 4.
    const std::uint32_t huge = 0x7fffffff;
    std::memcpy(m.payload.data() + 20, &huge, sizeof(huge));
    const auto before = m1.stats().packets_rejected;
    EXPECT_EQ(m1.process_packet(m, count_only), 0u);
    EXPECT_EQ(m1.stats().packets_rejected, before + 1);
  }

  // A destination rank outside the world rejects.
  {
    runtime::message m;
    m.source = 0;
    m.tag = kMailTag;
    m.payload = intact;
    const std::uint16_t bad_dest = 9999;
    std::memcpy(m.payload.data() + 16, &bad_dest, sizeof(bad_dest));
    const auto before = m1.stats().packets_rejected;
    EXPECT_EQ(m1.process_packet(m, count_only), 0u);
    EXPECT_EQ(m1.stats().packets_rejected, before + 1);
  }

  // The rejected packets above all carried seq 0.  Because rejection
  // happens before dedup, the intact retransmission must still deliver.
  std::size_t delivered = 0;
  runtime::message m;
  m.source = 0;
  m.tag = kMailTag;
  m.payload = intact;
  delivered = m1.process_packet(
      m, [](int, std::span<const std::byte>) {});
  EXPECT_EQ(delivered, 4u) << "corrupt copies must not burn the sequence";

  // ...and a second intact copy is now a duplicate.
  EXPECT_EQ(m1.process_packet(m, [](int, std::span<const std::byte>) {}), 0u);
  EXPECT_EQ(m1.stats().packets_dropped_duplicate, 1u);
}

TEST(MailboxFuzz, SeqWindowMatchesReferenceSetUnderChaosSchedules) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    util::chaos_stream cs(seed, /*stream_id=*/0xDEDu);
    // Arrival schedule: in-order sequences 0..n, then duplicated with
    // probability 1/8 and displaced — usually within a transport-realistic
    // horizon, occasionally (1/64) by more than the bitmap width so the
    // window must slide over unseen sequences and remember them as holes.
    const std::uint64_t n = 2000 + cs.below(2000);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> arrivals;  // (pos, seq)
    std::uint64_t pos = 0;
    for (std::uint64_t s = 0; s < n; ++s) {
      const std::uint64_t copies = cs.decide(1.0 / 8.0) ? 2 : 1;
      for (std::uint64_t c = 0; c < copies; ++c) {
        const std::uint64_t displace =
            cs.decide(1.0 / 64.0) ? cs.below(6000) : cs.below(64);
        arrivals.emplace_back(pos + displace, s);
        ++pos;
      }
    }
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });

    seq_window win;
    std::unordered_set<std::uint64_t> ref;
    std::uint64_t step = 0;
    for (const auto& [unused_pos, s] : arrivals) {
      const bool expect_first = ref.insert(s).second;
      ASSERT_EQ(win.first_time(s), expect_first)
          << "seed " << seed << " step " << step << " seq " << s
          << " (window base " << win.window_base() << ", holes "
          << win.holes() << ")";
      ++step;
    }
  }
}

TEST(MailboxFuzz, ExactlyOnceAllToAllUnderTransportFaults) {
  struct wire_record {
    std::uint32_t origin;
    std::uint32_t dest;
    std::uint64_t nonce;
  };
  chaos::sweep_config sweep;
  sweep.ranks = 4;
  sweep.num_seeds = 10;
  chaos::run_sweep(sweep, [](runtime::comm& c, const chaos::schedule& s) {
    routed_mailbox mb(c, {s.queue.topo, s.queue.aggregation_bytes, kMailTag});
    constexpr std::uint64_t kPerPair = 16;
    const int p = c.size();
    for (int d = 0; d < p; ++d) {
      for (std::uint64_t i = 0; i < kPerPair; ++i) {
        const wire_record r{static_cast<std::uint32_t>(c.rank()),
                            static_cast<std::uint32_t>(d), i};
        mb.send(d, runtime::as_bytes_of(r));
      }
    }
    std::map<std::pair<std::uint32_t, std::uint64_t>, int> seen;
    auto handler = [&](int origin, std::span<const std::byte> bytes) {
      ASSERT_EQ(bytes.size(), sizeof(wire_record));
      wire_record r;
      std::memcpy(&r, bytes.data(), sizeof(r));
      EXPECT_EQ(static_cast<int>(r.origin), origin);
      EXPECT_EQ(static_cast<int>(r.dest), c.rank());
      ++seen[{r.origin, r.nonce}];
    };
    mb.flush();
    const auto total = static_cast<std::uint64_t>(p) * p * kPerPair;
    while (true) {
      mb.drain_local(handler);
      runtime::message m;
      while (c.try_recv(m)) {
        mb.process_packet(m, handler);
        mb.drain_local(handler);
      }
      mb.tick();
      mb.flush();
      const std::uint64_t delivered =
          c.all_reduce(mb.stats().records_delivered, std::plus<>());
      if (delivered == total) break;
    }
    // Exactly once: every (origin, nonce) pair present, none doubled.
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(p) * kPerPair);
    for (const auto& [key, count] : seen) {
      EXPECT_EQ(count, 1) << "record replayed through the dedup layer";
    }
  });
}

}  // namespace
}  // namespace sfg::mailbox
