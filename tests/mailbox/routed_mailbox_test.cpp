#include "mailbox/routed_mailbox.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace sfg::mailbox {
namespace {

using runtime::launch;

constexpr int kMailTag = 0;

struct test_record {
  std::uint32_t origin;
  std::uint32_t dest;
  std::uint64_t seq;
  std::uint64_t checksum;
};

std::uint64_t expected_checksum(const test_record& r) {
  return util::splitmix64(r.origin ^ (static_cast<std::uint64_t>(r.dest) << 20) ^
                          (r.seq << 40));
}

/// Pump the comm inbox into the mailbox until globally all records are
/// delivered.  `expected_total` is the global record count.
void pump_until_all_delivered(runtime::comm& c, routed_mailbox& mb,
                              std::uint64_t expected_total,
                              std::vector<test_record>& received) {
  auto handler = [&](int origin, std::span<const std::byte> bytes) {
    ASSERT_EQ(bytes.size(), sizeof(test_record));
    test_record r;
    std::memcpy(&r, bytes.data(), sizeof(r));
    EXPECT_EQ(static_cast<int>(r.origin), origin);
    received.push_back(r);
  };
  mb.flush();
  // No termination detector here: poll until the global delivered count
  // reaches the expected total (checked via repeated all_reduce).
  while (true) {
    mb.drain_local(handler);
    runtime::message m;
    while (c.try_recv(m)) {
      mb.process_packet(m, handler);
      mb.drain_local(handler);
    }
    mb.flush();
    const std::uint64_t delivered = c.all_reduce(
        mb.stats().records_delivered, std::plus<>());
    if (delivered == expected_total) break;
  }
}

class MailboxP : public ::testing::TestWithParam<std::tuple<topology, int>> {};

TEST_P(MailboxP, AllToAllExactlyOnce) {
  const auto [topo, p] = GetParam();
  launch(p, [topo = topo, p = p](runtime::comm& c) {
    routed_mailbox mb(c, {topo, 1 << 13, kMailTag});
    // Every rank sends 3 records to every rank (including itself).
    constexpr int kPerPair = 3;
    for (int d = 0; d < p; ++d) {
      for (int s = 0; s < kPerPair; ++s) {
        test_record r{static_cast<std::uint32_t>(c.rank()),
                      static_cast<std::uint32_t>(d),
                      static_cast<std::uint64_t>(s), 0};
        r.checksum = expected_checksum(r);
        mb.send(d, runtime::as_bytes_of(r));
      }
    }
    std::vector<test_record> received;
    pump_until_all_delivered(
        c, mb, static_cast<std::uint64_t>(p) * p * kPerPair, received);

    // Exactly kPerPair records from each origin, uncorrupted.
    ASSERT_EQ(received.size(), static_cast<std::size_t>(p) * kPerPair);
    std::map<std::uint32_t, int> per_origin;
    for (const auto& r : received) {
      EXPECT_EQ(static_cast<int>(r.dest), c.rank());
      EXPECT_EQ(r.checksum, expected_checksum(r));
      per_origin[r.origin]++;
    }
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(per_origin[static_cast<std::uint32_t>(s)], kPerPair);
    }
    c.barrier();
  });
}

TEST_P(MailboxP, RandomTrafficPropertyTest) {
  const auto [topo, p] = GetParam();
  launch(p, [topo = topo, p = p](runtime::comm& c) {
    routed_mailbox mb(c, {topo, 256, kMailTag});  // tiny buffers: many packets
    auto rng = util::make_stream(99, static_cast<std::uint64_t>(c.rank()));
    constexpr int kRecords = 200;
    // Decide the global traffic matrix deterministically so every rank can
    // compute how much it should receive.
    std::uint64_t my_expected = 0;
    for (int src = 0; src < p; ++src) {
      auto gen = util::make_stream(7777, static_cast<std::uint64_t>(src));
      for (int i = 0; i < kRecords; ++i) {
        const auto dest = static_cast<int>(gen.uniform_below(
            static_cast<std::uint64_t>(p)));
        if (dest == c.rank()) ++my_expected;
        if (src == c.rank()) {
          test_record r{static_cast<std::uint32_t>(src),
                        static_cast<std::uint32_t>(dest),
                        static_cast<std::uint64_t>(i), 0};
          r.checksum = expected_checksum(r);
          mb.send(dest, runtime::as_bytes_of(r));
        }
      }
    }
    (void)rng;
    std::vector<test_record> received;
    pump_until_all_delivered(c, mb,
                             static_cast<std::uint64_t>(p) * kRecords,
                             received);
    EXPECT_EQ(received.size(), my_expected);
    for (const auto& r : received) {
      EXPECT_EQ(r.checksum, expected_checksum(r));
    }
    c.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndSizes, MailboxP,
    ::testing::Combine(::testing::Values(topology::direct, topology::grid2d,
                                         topology::torus3d),
                       ::testing::Values(1, 2, 4, 8, 12, 16)));

TEST(Mailbox, AggregationReducesPackets) {
  launch(4, [](runtime::comm& c) {
    routed_mailbox mb(c, {topology::direct, 1 << 16, kMailTag});
    // 100 records to one destination, all below the flush threshold:
    // exactly one packet once flushed.
    if (c.rank() == 0) {
      test_record r{0, 1, 0, 0};
      for (int i = 0; i < 100; ++i) {
        r.seq = static_cast<std::uint64_t>(i);
        r.checksum = expected_checksum(r);
        mb.send(1, runtime::as_bytes_of(r));
      }
      EXPECT_EQ(mb.stats().packets_sent, 0u);
      mb.flush();
      EXPECT_EQ(mb.stats().packets_sent, 1u);
      EXPECT_EQ(mb.stats().records_sent, 100u);
    }
    c.barrier();
  });
}

TEST(Mailbox, BufferFullTriggersAutoFlush) {
  launch(2, [](runtime::comm& c) {
    // Aggregation threshold smaller than two records: every send flushes.
    routed_mailbox mb(c, {topology::direct, sizeof(test_record), kMailTag});
    if (c.rank() == 0) {
      test_record r{0, 1, 0, 0};
      r.checksum = expected_checksum(r);
      mb.send(1, runtime::as_bytes_of(r));
      EXPECT_EQ(mb.stats().packets_sent, 1u);
      EXPECT_TRUE(mb.idle());
    }
    c.barrier();
  });
}

TEST(Mailbox, IdleReflectsBufferedState) {
  launch(2, [](runtime::comm& c) {
    routed_mailbox mb(c, {topology::direct, 1 << 16, kMailTag});
    EXPECT_TRUE(mb.idle());
    if (c.rank() == 0) {
      test_record r{0, 1, 0, 0};
      mb.send(1, runtime::as_bytes_of(r));
      EXPECT_FALSE(mb.idle());
      mb.flush();
      EXPECT_TRUE(mb.idle());
      // Self-send parks in the local queue: not idle until drained.
      mb.send(0, runtime::as_bytes_of(r));
      EXPECT_FALSE(mb.idle());
      mb.drain_local([](int, std::span<const std::byte>) {});
      EXPECT_TRUE(mb.idle());
    }
    c.barrier();
  });
}

TEST(Mailbox, ForwardingCountedAtIntermediateRank) {
  launch(16, [](runtime::comm& c) {
    routed_mailbox mb(c, {topology::grid2d, 64, kMailTag});
    // 11 -> 5 must transit 9 (paper Figure 4).
    if (c.rank() == 11) {
      test_record r{11, 5, 0, 0};
      r.checksum = expected_checksum(r);
      mb.send(5, runtime::as_bytes_of(r));
      mb.flush();
    }
    std::vector<test_record> received;
    pump_until_all_delivered(c, mb, 1, received);
    if (c.rank() == 9) {
      EXPECT_EQ(mb.stats().records_forwarded, 1u);
    } else {
      EXPECT_EQ(mb.stats().records_forwarded, 0u);
    }
    if (c.rank() == 5) {
      ASSERT_EQ(received.size(), 1u);
      EXPECT_EQ(received[0].origin, 11u);
    }
    c.barrier();
  });
}

TEST(Mailbox, SelfSendNeverTouchesNetwork) {
  launch(3, [](runtime::comm& c) {
    routed_mailbox mb(c, {topology::grid2d, 1 << 13, kMailTag});
    test_record r{static_cast<std::uint32_t>(c.rank()),
                  static_cast<std::uint32_t>(c.rank()), 7, 0};
    r.checksum = expected_checksum(r);
    mb.send(c.rank(), runtime::as_bytes_of(r));
    int got = 0;
    mb.drain_local([&](int origin, std::span<const std::byte> bytes) {
      test_record out;
      std::memcpy(&out, bytes.data(), sizeof(out));
      EXPECT_EQ(origin, c.rank());
      EXPECT_EQ(out.seq, 7u);
      ++got;
    });
    EXPECT_EQ(got, 1);
    EXPECT_EQ(mb.stats().packets_sent, 0u);
    EXPECT_EQ(c.stats().messages_sent, 0u);
    c.barrier();
  });
}

TEST(Mailbox, HandlerMaySendMoreRecords) {
  // A delivered record can trigger further sends from inside the handler
  // (exactly what visitors do).  Chain: 0 -> 1 -> 2 -> 3, ttl countdown.
  launch(4, [](runtime::comm& c) {
    routed_mailbox mb(c, {topology::direct, 64, kMailTag});
    std::uint64_t delivered_ttls = 0;
    auto handler = [&](int, std::span<const std::byte> bytes) {
      test_record r;
      std::memcpy(&r, bytes.data(), sizeof(r));
      delivered_ttls += r.seq;
      if (r.seq > 0) {
        test_record next{static_cast<std::uint32_t>(c.rank()),
                         static_cast<std::uint32_t>((c.rank() + 1) % 4),
                         r.seq - 1, 0};
        mb.send((c.rank() + 1) % 4, runtime::as_bytes_of(next));
        mb.flush();
      }
    };
    if (c.rank() == 0) {
      test_record r{0, 1, 6, 0};  // 6 hops of ttl
      mb.send(1, runtime::as_bytes_of(r));
      mb.flush();
    }
    while (true) {
      mb.drain_local(handler);
      runtime::message m;
      while (c.try_recv(m)) {
        mb.process_packet(m, handler);
        mb.drain_local(handler);
      }
      mb.flush();
      const auto total = c.all_reduce(mb.stats().records_delivered,
                                      std::plus<>());
      if (total == 7) break;  // ttl 6..0 inclusive
    }
    c.barrier();
  });
}

}  // namespace
}  // namespace sfg::mailbox
