#include "mailbox/topology.hpp"

#include <gtest/gtest.h>

namespace sfg::mailbox {
namespace {

TEST(Router, PaperFigure4Example) {
  // 16 ranks on a 4x4 grid: a message from rank 11 to rank 5 is first
  // routed through rank 9 (paper Figure 4).
  const router r(topology::grid2d, 16);
  EXPECT_EQ(r.next_hop(11, 5), 9);
  EXPECT_EQ(r.next_hop(9, 5), 5);
  EXPECT_EQ(r.num_hops(11, 5), 2);
}

TEST(Router, DirectAlwaysOneHop) {
  const router r(topology::direct, 10);
  for (int a = 0; a < 10; ++a) {
    for (int b = 0; b < 10; ++b) {
      if (a == b) continue;
      EXPECT_EQ(r.next_hop(a, b), b);
      EXPECT_EQ(r.num_hops(a, b), 1);
    }
  }
}

class RouterAllPairs
    : public ::testing::TestWithParam<std::tuple<topology, int>> {};

TEST_P(RouterAllPairs, EveryRouteTerminatesWithinMaxHops) {
  const auto [topo, p] = GetParam();
  const router r(topo, p);
  for (int a = 0; a < p; ++a) {
    for (int b = 0; b < p; ++b) {
      if (a == b) continue;
      const int hops = r.num_hops(a, b);
      EXPECT_GE(hops, 1);
      EXPECT_LE(hops, r.max_hops()) << topology_name(topo) << " " << a
                                    << "->" << b;
    }
  }
}

TEST_P(RouterAllPairs, NextHopsStayInRange) {
  const auto [topo, p] = GetParam();
  const router r(topo, p);
  for (int a = 0; a < p; ++a) {
    for (int b = 0; b < p; ++b) {
      if (a == b) continue;
      const int h = r.next_hop(a, b);
      EXPECT_GE(h, 0);
      EXPECT_LT(h, p);
      EXPECT_NE(h, a) << "route must make progress";
    }
  }
}

TEST_P(RouterAllPairs, ChannelCountMatchesObservedNextHops) {
  const auto [topo, p] = GetParam();
  const router r(topo, p);
  for (int a = 0; a < p; ++a) {
    std::set<int> hops;
    for (int b = 0; b < p; ++b) {
      if (a == b) continue;
      hops.insert(r.next_hop(a, b));
    }
    EXPECT_EQ(static_cast<int>(hops.size()), r.num_channels(a))
        << topology_name(topo) << " p=" << p << " rank=" << a;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndSizes, RouterAllPairs,
    ::testing::Combine(::testing::Values(topology::direct, topology::grid2d,
                                         topology::torus3d),
                       ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16, 27, 36,
                                         64)));

TEST(Router, ChannelReductionIsSignificant) {
  // The point of 2D routing (paper §III-B): O(sqrt p) channels instead of
  // O(p).  At p = 64: direct = 63 channels, 2D = 14, 3D = 9.
  EXPECT_EQ(router(topology::direct, 64).num_channels(0), 63);
  EXPECT_EQ(router(topology::grid2d, 64).num_channels(0), 14);
  EXPECT_EQ(router(topology::torus3d, 64).num_channels(0), 9);
}

}  // namespace
}  // namespace sfg::mailbox
