/// Critical-path analyzer + validator tests (obs/critpath.hpp) over
/// hand-built span fragments: local attribution, the wire jump across a
/// matched packet edge, the termination-straggler jump, untracked gaps,
/// and the validator's rejection of broken sections.
#include "obs/critpath.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/phase.hpp"

namespace sfg::obs {
namespace {

constexpr auto kVisit = static_cast<std::uint64_t>(phase::visit);
constexpr auto kPoll = static_cast<std::uint64_t>(phase::poll);
constexpr auto kTerm = static_cast<std::uint64_t>(phase::term);

json make_frag(int rank) {
  json f = json::object();
  f["rank"] = static_cast<std::int64_t>(rank);
  f["dropped"] = std::uint64_t{0};
  f["spans"] = json::array();
  return f;
}

void add_span(json& frag, const char* k, std::uint64_t t0, std::uint64_t t1,
              std::uint64_t a = 0, std::uint64_t b = 0) {
  json sp = json::object();
  sp["k"] = k;
  sp["t0"] = t0;
  sp["t1"] = t1;
  sp["a"] = a;
  sp["b"] = b;
  frag["spans"].push_back(std::move(sp));
  frag["recorded"] = frag["spans"].size();
}

std::uint64_t num(const json& o, const char* key) {
  const json* v = o.find(key);
  return (v != nullptr && v->is_number())
             ? static_cast<std::uint64_t>(v->as_double())
             : 0;
}

std::string str(const json& o, const char* key) {
  const json* v = o.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string();
}

void expect_valid(const json& section) {
  std::vector<std::string> errors;
  EXPECT_TRUE(critpath_validate(section, &errors));
  for (const auto& e : errors) ADD_FAILURE() << e;
}

TEST(Critpath, NullWithoutTraversalWindow) {
  json frags = json::array();
  json f = make_frag(0);
  add_span(f, "phase_seg", 100, 200, kVisit);
  frags.push_back(std::move(f));
  EXPECT_TRUE(critpath_analyze(frags).is_null());
  EXPECT_TRUE(critpath_analyze(json::array()).is_null());
  EXPECT_TRUE(critpath_analyze(json()).is_null());
}

TEST(Critpath, SingleRankLocalAttribution) {
  json frags = json::array();
  json f = make_frag(0);
  add_span(f, "trav_begin", 1000, 1000, 1, 1);
  add_span(f, "phase_seg", 1000, 2000, kVisit);
  add_span(f, "trav_end", 2000, 2000, 1, 1);
  frags.push_back(std::move(f));

  const json section = critpath_analyze(frags);
  ASSERT_TRUE(section.is_object());
  EXPECT_EQ(str(section, "schema"), "sfg-critpath/1");
  EXPECT_EQ(num(section, "wall_us"), 1000u);
  EXPECT_EQ(num(section, "t0_us"), 1000u);
  EXPECT_EQ(num(section, "t1_us"), 2000u);

  const json* segs = section.find("segments");
  ASSERT_NE(segs, nullptr);
  ASSERT_EQ(segs->size(), 1u);
  EXPECT_EQ(str(segs->at(0), "kind"), "visit");
  EXPECT_EQ(num(segs->at(0), "dur_us"), 1000u);
  expect_valid(section);
}

TEST(Critpath, WireJumpFollowsPacketToSender) {
  json frags = json::array();
  // Rank 0 does the early work, flushes a packet to rank 1 at t=1600
  // (seq 5), and leaves early.
  json f0 = make_frag(0);
  add_span(f0, "trav_begin", 1000, 1000, 1, 2);
  add_span(f0, "phase_seg", 1000, 1600, kVisit);
  add_span(f0, "mbox_send", 1600, 1600, /*next_hop=*/1, /*seq=*/5);
  add_span(f0, "phase_seg", 1600, 1700, kPoll);
  add_span(f0, "trav_end", 1700, 1700, 1, 2);
  frags.push_back(std::move(f0));
  // Rank 1 polls until the packet lands at t=2000, then finishes last.
  json f1 = make_frag(1);
  add_span(f1, "trav_begin", 1000, 1000, 1, 2);
  add_span(f1, "phase_seg", 1000, 2500, kPoll);
  add_span(f1, "mbox_recv", 2000, 2000, /*source=*/0, /*seq=*/5);
  add_span(f1, "phase_seg", 2500, 3000, kVisit);
  add_span(f1, "trav_end", 3000, 3000, 1, 2);
  frags.push_back(std::move(f1));

  const json section = critpath_analyze(frags);
  ASSERT_TRUE(section.is_object());
  EXPECT_EQ(num(section, "wall_us"), 2000u);

  const json* segs = section.find("segments");
  ASSERT_NE(segs, nullptr);
  ASSERT_EQ(segs->size(), 4u);
  // rank 0 computing -> packet on the wire -> rank 1 polling tail ->
  // rank 1 computing.
  EXPECT_EQ(num(segs->at(0), "rank"), 0u);
  EXPECT_EQ(str(segs->at(0), "kind"), "visit");
  EXPECT_EQ(str(segs->at(1), "kind"), "wire");
  EXPECT_EQ(num(segs->at(1), "t0_us"), 1600u);
  EXPECT_EQ(num(segs->at(1), "t1_us"), 2000u);
  EXPECT_EQ(num(segs->at(1), "src"), 0u);
  EXPECT_EQ(num(segs->at(1), "dst"), 1u);
  EXPECT_EQ(str(segs->at(2), "kind"), "poll");
  EXPECT_EQ(num(segs->at(2), "rank"), 1u);
  EXPECT_EQ(str(segs->at(3), "kind"), "visit");
  EXPECT_EQ(num(segs->at(3), "rank"), 1u);

  // The wire channel shows up as its own blame key.
  const json* blame = section.find("blame");
  ASSERT_NE(blame, nullptr);
  bool wire_blamed = false;
  for (std::size_t i = 0; i < blame->size(); ++i) {
    if (str(blame->at(i), "kind") == "wire 0->1") wire_blamed = true;
  }
  EXPECT_TRUE(wire_blamed);
  expect_valid(section);
}

TEST(Critpath, TermJumpBlamesStraggler) {
  json frags = json::array();
  // Rank 0 finishes its work fast and waits in termination.
  json f0 = make_frag(0);
  add_span(f0, "trav_begin", 1000, 1000, 1, 2);
  add_span(f0, "phase_seg", 1000, 2000, kVisit);
  add_span(f0, "phase_seg", 2000, 4000, kTerm);
  add_span(f0, "trav_end", 4000, 4000, 1, 2);
  frags.push_back(std::move(f0));
  // Rank 1 is the straggler: computes until 3500.
  json f1 = make_frag(1);
  add_span(f1, "trav_begin", 1000, 1000, 1, 2);
  add_span(f1, "phase_seg", 1000, 3500, kVisit);
  add_span(f1, "phase_seg", 3500, 3990, kTerm);
  add_span(f1, "trav_end", 3990, 3990, 1, 2);
  frags.push_back(std::move(f1));

  const json section = critpath_analyze(frags);
  ASSERT_TRUE(section.is_object());
  const json* segs = section.find("segments");
  ASSERT_NE(segs, nullptr);
  ASSERT_EQ(segs->size(), 2u);
  EXPECT_EQ(num(segs->at(0), "rank"), 1u);
  EXPECT_EQ(str(segs->at(0), "kind"), "visit");
  EXPECT_EQ(num(segs->at(0), "dur_us"), 2500u);
  EXPECT_EQ(num(segs->at(1), "rank"), 0u);
  EXPECT_EQ(str(segs->at(1), "kind"), "term");

  // The top blame entry is the straggler's compute, not the waiter.
  const json* blame = section.find("blame");
  ASSERT_NE(blame, nullptr);
  ASSERT_GE(blame->size(), 1u);
  EXPECT_EQ(num(blame->at(0), "rank"), 1u);
  EXPECT_EQ(str(blame->at(0), "kind"), "visit");
  expect_valid(section);
}

TEST(Critpath, GapBecomesUntracked) {
  json frags = json::array();
  json f = make_frag(0);
  add_span(f, "trav_begin", 1000, 1000, 1, 1);
  add_span(f, "phase_seg", 2000, 3000, kVisit);  // nothing before t=2000
  add_span(f, "trav_end", 3000, 3000, 1, 1);
  frags.push_back(std::move(f));

  const json section = critpath_analyze(frags);
  ASSERT_TRUE(section.is_object());
  const json* segs = section.find("segments");
  ASSERT_NE(segs, nullptr);
  ASSERT_EQ(segs->size(), 2u);
  EXPECT_EQ(str(segs->at(0), "kind"), "untracked");
  EXPECT_EQ(num(segs->at(0), "t0_us"), 1000u);
  EXPECT_EQ(num(segs->at(0), "t1_us"), 2000u);
  EXPECT_EQ(str(segs->at(1), "kind"), "visit");
  // The gap still yields a connected, full-coverage chain.
  expect_valid(section);
}

TEST(Critpath, LevelsCarryBarrierTimestamps) {
  json frags = json::array();
  json f = make_frag(0);
  add_span(f, "trav_begin", 1000, 1000, 1, 1);
  add_span(f, "bfs_level", 1200, 1200, /*level=*/0, /*bottom_up=*/0);
  add_span(f, "bfs_level", 1800, 1800, /*level=*/1, /*bottom_up=*/1);
  add_span(f, "phase_seg", 1000, 2000, kVisit);
  add_span(f, "trav_end", 2000, 2000, 1, 1);
  frags.push_back(std::move(f));

  const json section = critpath_analyze(frags);
  ASSERT_TRUE(section.is_object());
  const json* levels = section.find("levels");
  ASSERT_NE(levels, nullptr);
  ASSERT_EQ(levels->size(), 2u);
  EXPECT_EQ(num(levels->at(0), "level"), 0u);
  EXPECT_EQ(num(levels->at(0), "ts_us"), 1200u);
  EXPECT_EQ(num(levels->at(1), "level"), 1u);
  EXPECT_EQ(num(levels->at(1), "ts_us"), 1800u);
  const json* bu = levels->at(1).find("bottom_up");
  ASSERT_NE(bu, nullptr);
  EXPECT_TRUE(bu->is_bool() && bu->as_bool());
}

TEST(Critpath, ValidatorRejectsWrongSchema) {
  json section = json::object();
  section["schema"] = "sfg-bogus/1";
  std::vector<std::string> errors;
  EXPECT_FALSE(critpath_validate(section, &errors));
  EXPECT_FALSE(errors.empty());
}

TEST(Critpath, ValidatorRejectsBrokenChain) {
  // Hand-built section whose only segment starts 50us after the window
  // opens: durations and fractions are self-consistent, but the chain is
  // not connected to t0_us.
  json section = json::object();
  section["schema"] = "sfg-critpath/1";
  section["wall_us"] = std::uint64_t{1000};
  section["t0_us"] = std::uint64_t{1000};
  section["t1_us"] = std::uint64_t{2000};
  section["coverage"] = 0.95;
  section["ranks"] = json::array();
  json seg = json::object();
  seg["rank"] = std::int64_t{0};
  seg["kind"] = "visit";
  seg["t0_us"] = std::uint64_t{1050};
  seg["t1_us"] = std::uint64_t{2000};
  seg["dur_us"] = std::uint64_t{950};
  seg["frac"] = 0.95;
  json segs = json::array();
  segs.push_back(std::move(seg));
  section["segments"] = std::move(segs);
  json blame_entry = json::object();
  blame_entry["rank"] = std::int64_t{0};
  blame_entry["kind"] = "visit";
  blame_entry["dur_us"] = std::uint64_t{950};
  blame_entry["frac"] = 0.95;
  json blame = json::array();
  blame.push_back(std::move(blame_entry));
  section["blame"] = std::move(blame);

  std::vector<std::string> errors;
  EXPECT_FALSE(critpath_validate(section, &errors));
  bool chain_error = false;
  for (const auto& e : errors) {
    if (e.find("chain") != std::string::npos) chain_error = true;
  }
  EXPECT_TRUE(chain_error);
}

}  // namespace
}  // namespace sfg::obs
