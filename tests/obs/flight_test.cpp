/// Flight-recorder tests (DESIGN.md §9): ring wrap-around accounting,
/// the sfg-flight/1 dump schema, the enable gate, in-place clear, and the
/// black-box path itself — a rank fault inside runtime::launch must leave
/// a parsable dump behind with every participating rank's ring in it.
#include "obs/flight.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "runtime/runtime.hpp"
#include "util/log.hpp"

namespace sfg::obs {
namespace {

/// Saves and restores every global flight toggle so tests compose: the
/// recorder is process-global state shared with other suites in this
/// binary.
struct flight_fixture : ::testing::Test {
  bool saved_enabled = flight_on();
  std::size_t saved_capacity = flight_capacity();
  std::string saved_path = flight_dump_path();
  void SetUp() override {
    set_flight_enabled(true);
    set_flight_dump_path("");
    flight_clear();
  }
  void TearDown() override {
    set_flight_dump_path(saved_path);
    set_flight_capacity(saved_capacity);  // also discards test rings
    set_flight_enabled(saved_enabled);
  }
};

/// Record `n` events as `rank`, values a = 0..n-1, on a dedicated thread
/// (the ring is keyed by the calling thread's rank).
void record_as_rank(int rank, int n) {
  std::thread([rank, n] {
    util::set_thread_rank(rank);
    for (int i = 0; i < n; ++i) {
      flight_record(flight_kind::queue_batch, static_cast<std::uint64_t>(i),
                    static_cast<std::uint64_t>(rank));
    }
    util::set_thread_rank(-1);
  }).join();
}

const json* find_rank(const json& doc, std::int64_t rank) {
  const json* ranks = doc.find("ranks");
  if (ranks == nullptr) return nullptr;
  for (std::size_t i = 0; i < ranks->size(); ++i) {
    const json* r = ranks->at(i).find("rank");
    if (r != nullptr && r->as_i64() == rank) return &ranks->at(i);
  }
  return nullptr;
}

using flight_test = flight_fixture;

TEST_F(flight_test, DumpHasSchemaAndEventShape) {
  record_as_rank(0, 3);
  const json doc = flight_to_json("unit-test");
  EXPECT_EQ(doc.find("schema")->as_string(), "sfg-flight/1");
  EXPECT_EQ(doc.find("why")->as_string(), "unit-test");
  EXPECT_EQ(doc.find("capacity")->as_u64(), flight_capacity());

  const json* entry = find_rank(doc, 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->find("recorded")->as_u64(), 3u);
  EXPECT_EQ(entry->find("dropped")->as_u64(), 0u);
  const json& events = *entry->find("events");
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json& ev = events.at(i);
    ASSERT_NE(ev.find("ts_us"), nullptr);
    EXPECT_EQ(ev.find("kind")->as_string(), "queue_batch");
    EXPECT_EQ(ev.find("a")->as_u64(), i);  // oldest-to-newest
    EXPECT_EQ(ev.find("b")->as_u64(), 0u);
  }
}

TEST_F(flight_test, WrapAroundKeepsNewestAndCountsDropped) {
  constexpr std::size_t kCap = 8;
  constexpr int kEvents = 21;
  set_flight_capacity(kCap);
  EXPECT_EQ(flight_capacity(), kCap);
  record_as_rank(1, kEvents);

  const json doc = flight_to_json("wrap");
  const json* entry = find_rank(doc, 1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->find("recorded")->as_u64(), std::uint64_t{kEvents});
  EXPECT_EQ(entry->find("dropped")->as_u64(), std::uint64_t{kEvents - kCap});
  const json& events = *entry->find("events");
  ASSERT_EQ(events.size(), kCap);
  // Survivors are exactly the newest kCap, oldest-to-newest.
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(events.at(i).find("a")->as_u64(), kEvents - kCap + i);
  }
}

TEST_F(flight_test, RecordedHereTracksTotalIncludingOverwritten) {
  set_flight_capacity(4);
  std::thread([] {
    util::set_thread_rank(2);
    for (int i = 0; i < 11; ++i) flight_record(flight_kind::term_wave);
    EXPECT_EQ(flight_recorded_here(), 11u);
    util::set_thread_rank(-1);
  }).join();
}

TEST_F(flight_test, DisabledRecordsNothing) {
  set_flight_enabled(false);
  EXPECT_FALSE(flight_on());
  record_as_rank(3, 5);
  const json doc = flight_to_json("off");
  const json* entry = find_rank(doc, 3);
  // Either the ring was never created or it stayed empty.
  if (entry != nullptr) {
    EXPECT_EQ(entry->find("recorded")->as_u64(), 0u);
  }
}

TEST_F(flight_test, ClearEmptiesRingsInPlace) {
  record_as_rank(0, 5);
  flight_clear();
  const json cleared = flight_to_json("cleared");
  const json* entry = find_rank(cleared, 0);
  ASSERT_NE(entry, nullptr);  // ring survives, empty
  EXPECT_EQ(entry->find("recorded")->as_u64(), 0u);
  EXPECT_EQ(entry->find("events")->size(), 0u);
  // And it keeps recording after the clear.
  record_as_rank(0, 2);
  const json after = flight_to_json("after");
  entry = find_rank(after, 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->find("recorded")->as_u64(), 2u);
}

TEST_F(flight_test, WriteProducesParsableFile) {
  record_as_rank(0, 2);
  const std::string path = ::testing::TempDir() + "flight_test_out.json";
  ASSERT_TRUE(flight_write(path, "file"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = json::parse(ss.str());
  ASSERT_TRUE(doc.has_value()) << "flight dump is not valid JSON";
  EXPECT_EQ(doc->find("schema")->as_string(), "sfg-flight/1");
  std::remove(path.c_str());
}

TEST_F(flight_test, DumpToDirectoryUsesPerProcessName) {
  record_as_rank(0, 1);
  set_flight_dump_path(::testing::TempDir());
  flight_dump("dir");
  const std::string expected = ::testing::TempDir() + "/sfg_flight_" +
                               std::to_string(::getpid()) + ".json";
  std::ifstream in(expected);
  EXPECT_TRUE(in.good()) << "expected dump at " << expected;
  in.close();
  std::remove(expected.c_str());
}

TEST_F(flight_test, DumpWithoutPathIsNoOp) {
  // Fault paths call flight_dump unconditionally; with no configured path
  // it must do nothing (and certainly not throw).
  set_flight_dump_path("");
  record_as_rank(0, 1);
  flight_dump("nowhere");
}

TEST_F(flight_test, RankFaultDumpsEveryRanksRing) {
  // The acceptance path: a rank throws mid-launch; runtime::launch records
  // rank_fault and dumps before poisoning, so the file must exist, parse,
  // and contain a ring for every participating rank — including the ones
  // that were still blocked in the barrier when the fault hit.
  constexpr int kRanks = 4;
  const std::string path = ::testing::TempDir() + "flight_fault_dump.json";
  std::remove(path.c_str());
  set_flight_dump_path(path);

  EXPECT_THROW(
      runtime::launch(kRanks,
                      [](runtime::comm& c) {
                        flight_record(flight_kind::queue_batch, 1,
                                      static_cast<std::uint64_t>(c.rank()));
                        c.barrier();  // every ring populated before the fault
                        if (c.rank() == 2) {
                          throw std::runtime_error("injected rank fault");
                        }
                        c.barrier();  // survivors park here until poisoned
                      }),
      std::runtime_error);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "rank fault left no flight dump at " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = json::parse(ss.str());
  ASSERT_TRUE(doc.has_value()) << "flight dump is not valid JSON";
  EXPECT_EQ(doc->find("why")->as_string(), "rank-fault");

  for (int r = 0; r < kRanks; ++r) {
    const json* entry = find_rank(*doc, r);
    ASSERT_NE(entry, nullptr) << "rank " << r << " missing from dump";
    EXPECT_GE(entry->find("recorded")->as_u64(), 1u);
  }
  // The faulting rank's ring ends with the rank_fault marker.
  const json* faulted = find_rank(*doc, 2);
  ASSERT_NE(faulted, nullptr);
  const json& events = *faulted->find("events");
  ASSERT_GT(events.size(), 0u);
  const json& last = events.at(events.size() - 1);
  EXPECT_EQ(last.find("kind")->as_string(), "rank_fault");
  EXPECT_EQ(last.find("a")->as_u64(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sfg::obs
