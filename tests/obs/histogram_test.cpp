/// Log2-histogram tests: bucket boundaries, the conservative (upper-bound)
/// quantile rule, merge/minus arithmetic, the registry-resident
/// histogram_metric, and the stats_traits reflection path a histogram
/// field rides through (delta / add / to_json / to_registry).
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stats_fields.hpp"

namespace sfg::obs {
namespace {

TEST(Histogram, BucketOfEdges) {
  EXPECT_EQ(histogram::bucket_of(0), 0u);
  EXPECT_EQ(histogram::bucket_of(1), 1u);
  EXPECT_EQ(histogram::bucket_of(2), 2u);
  EXPECT_EQ(histogram::bucket_of(3), 2u);
  EXPECT_EQ(histogram::bucket_of(4), 3u);
  // Each power of two opens a new bucket; bucket i holds [2^(i-1), 2^i).
  for (int k = 1; k < 64; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    EXPECT_EQ(histogram::bucket_of(p - 1), static_cast<std::size_t>(k));
    EXPECT_EQ(histogram::bucket_of(p), static_cast<std::size_t>(k + 1));
  }
  EXPECT_EQ(histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64u);
}

TEST(Histogram, BucketUpperEdges) {
  EXPECT_EQ(histogram::bucket_upper(0), 0u);
  EXPECT_EQ(histogram::bucket_upper(1), 1u);
  EXPECT_EQ(histogram::bucket_upper(2), 3u);
  EXPECT_EQ(histogram::bucket_upper(10), 1023u);
  EXPECT_EQ(histogram::bucket_upper(64),
            std::numeric_limits<std::uint64_t>::max());
  // Upper bound really is the largest value mapping to that bucket.
  for (std::size_t i = 1; i < 63; ++i) {
    EXPECT_EQ(histogram::bucket_of(histogram::bucket_upper(i)), i);
    EXPECT_EQ(histogram::bucket_of(histogram::bucket_upper(i) + 1), i + 1);
  }
}

TEST(Histogram, EmptyIsAllZero) {
  const histogram h{};
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, AddAccumulatesCountAndSum) {
  histogram h;
  h.add(0);
  h.add(1);
  h.add(100);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 101u);
  EXPECT_EQ(h.buckets[histogram::bucket_of(0)], 1u);
  EXPECT_EQ(h.buckets[histogram::bucket_of(100)], 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 101.0 / 3.0);
}

TEST(Histogram, QuantileIsBucketUpperBound) {
  histogram h;
  // 90 small values (bucket_of(10) == 4, upper 15) and 10 large stragglers
  // (bucket_of(5000) == 13, upper 8191): p50 reports the small bucket's
  // ceiling, p99 the straggler bucket's.
  for (int i = 0; i < 90; ++i) h.add(10);
  for (int i = 0; i < 10; ++i) h.add(5000);
  EXPECT_EQ(h.quantile(0.50), 15u);
  EXPECT_EQ(h.quantile(0.90), 15u);
  EXPECT_EQ(h.quantile(0.99), 8191u);
  EXPECT_EQ(h.quantile(1.00), 8191u);
  // Out-of-range q clamps instead of misbehaving.
  EXPECT_EQ(h.quantile(-1.0), 15u);
  EXPECT_EQ(h.quantile(2.0), 8191u);
}

TEST(Histogram, ToJsonShape) {
  histogram h;
  h.add(7);
  h.add(9);
  const json o = h.to_json();
  for (const char* key : {"count", "sum", "mean", "p50", "p90", "p99"}) {
    ASSERT_NE(o.find(key), nullptr) << key;
  }
  EXPECT_EQ(o.find("count")->as_u64(), 2u);
  EXPECT_EQ(o.find("sum")->as_u64(), 16u);
  EXPECT_DOUBLE_EQ(o.find("mean")->as_double(), 8.0);
}

TEST(Histogram, MergeAndMinusAreInverse) {
  histogram a;
  a.add(1);
  a.add(1000);
  histogram b;
  b.add(64);

  histogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 1065u);

  const histogram back = merged.minus(b);
  EXPECT_EQ(back.count, a.count);
  EXPECT_EQ(back.sum, a.sum);
  EXPECT_EQ(back.buckets, a.buckets);
}

// ---------------------------------------------------------------------------
// Registry-resident histogram_metric.
// ---------------------------------------------------------------------------

struct metrics_toggle_guard {
  bool metrics = metrics_on();
  ~metrics_toggle_guard() { set_metrics_enabled(metrics); }
};

TEST(HistogramMetric, HandlesAreStable) {
  auto& a = metrics_registry::instance().get_histogram("test.hist.stable");
  auto& b = metrics_registry::instance().get_histogram("test.hist.stable");
  EXPECT_EQ(&a, &b);
}

TEST(HistogramMetric, RecordGatedOnToggle) {
  metrics_toggle_guard guard;
  auto& h = metrics_registry::instance().get_histogram("test.hist.gated");
  h.reset();
  set_metrics_enabled(false);
  h.record(5);
  EXPECT_EQ(h.count(), 0u);
  set_metrics_enabled(true);
  h.record(5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramMetric, ConcurrentRecordIsExact) {
  metrics_toggle_guard guard;
  set_metrics_enabled(true);
  auto& h = metrics_registry::instance().get_histogram("test.hist.mt");
  h.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record_raw(i & 1023);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.snapshot().count, kThreads * kPerThread);
}

TEST(HistogramMetric, SnapshotAppearsInRegistryJson) {
  metrics_toggle_guard guard;
  set_metrics_enabled(true);
  auto& h = metrics_registry::instance().get_histogram("test.hist.snap");
  h.reset();
  h.record(100);
  h.record(200);

  const json snap = metrics_registry::instance().snapshot();
  const json* section = snap.find("histograms");
  ASSERT_NE(section, nullptr) << "snapshot missing \"histograms\" section";
  const json* entry = section->find("test.hist.snap");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->find("count")->as_u64(), 2u);
  EXPECT_EQ(entry->find("sum")->as_u64(), 300u);

  metrics_registry::instance().reset_values();
  EXPECT_EQ(h.count(), 0u) << "reset_values must zero histograms too";
}

TEST(HistogramMetric, MergeRawFoldsPlainHistogram) {
  metrics_toggle_guard guard;
  set_metrics_enabled(true);
  auto& hm = metrics_registry::instance().get_histogram("test.hist.fold");
  hm.reset();
  histogram h;
  h.add(3);
  h.add(300);
  hm.merge_raw(h);
  const histogram out = hm.snapshot();
  EXPECT_EQ(out.count, 2u);
  EXPECT_EQ(out.sum, 303u);
  EXPECT_EQ(out.buckets, h.buckets);
}

// ---------------------------------------------------------------------------
// stats_traits reflection: a histogram member is a first-class stats field.
// ---------------------------------------------------------------------------

struct timing_stats {
  std::uint64_t calls = 0;
  histogram latency_us;
};

}  // namespace

template <>
struct stats_traits<timing_stats> {
  static constexpr auto fields = std::make_tuple(
      stats_field{"calls", &timing_stats::calls},
      stats_field{"latency_us", &timing_stats::latency_us});
};

namespace {

TEST(HistogramStatsTraits, DeltaAddJsonAndRegistry) {
  timing_stats before;
  before.calls = 1;
  before.latency_us.add(10);

  timing_stats after = before;
  after.calls = 3;
  after.latency_us.add(20);
  after.latency_us.add(4000);

  const timing_stats d = stats_delta(after, before);
  EXPECT_EQ(d.calls, 2u);
  EXPECT_EQ(d.latency_us.count, 2u);
  EXPECT_EQ(d.latency_us.sum, 4020u);

  timing_stats total = before;
  stats_add(total, d);
  EXPECT_EQ(total.calls, after.calls);
  EXPECT_EQ(total.latency_us.count, after.latency_us.count);
  EXPECT_EQ(total.latency_us.sum, after.latency_us.sum);

  const json o = stats_to_json(d);
  ASSERT_NE(o.find("latency_us"), nullptr);
  EXPECT_EQ(o.find("latency_us")->find("count")->as_u64(), 2u);
  EXPECT_EQ(o.find("calls")->as_u64(), 2u);

  metrics_toggle_guard guard;
  set_metrics_enabled(true);
  metrics_registry::instance().get_histogram("test.traits.latency_us").reset();
  metrics_registry::instance().get_counter("test.traits.calls").reset();
  stats_to_registry("test.traits", d);
  EXPECT_EQ(metrics_registry::instance()
                .get_histogram("test.traits.latency_us")
                .count(),
            2u);
  EXPECT_EQ(metrics_registry::instance().get_counter("test.traits.calls").value(),
            2u);
}

}  // namespace
}  // namespace sfg::obs
