/// Round-trip and robustness tests for the minimal JSON value type every
/// report schema is built on.  The properties that matter downstream:
/// object order is preserved (diffable reports), integer counters survive
/// without passing through double, and a re-parse preserves the numeric
/// kind (doubles always render with a '.').
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace sfg::obs {
namespace {

TEST(Json, PrimitivesDump) {
  EXPECT_EQ(json().dump(), "null");
  EXPECT_EQ(json(nullptr).dump(), "null");
  EXPECT_EQ(json(true).dump(), "true");
  EXPECT_EQ(json(false).dump(), "false");
  EXPECT_EQ(json(42).dump(), "42");
  EXPECT_EQ(json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(json("hi").dump(), "\"hi\"");
}

TEST(Json, LargeIntegersKeepExactValue) {
  // A counter near 2^64 must not be squeezed through double.
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max() - 1;
  const json j(big);
  EXPECT_EQ(j.dump(), "18446744073709551614");
  const auto back = json::parse(j.dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_u64(), big);

  const std::int64_t small = std::numeric_limits<std::int64_t>::min();
  const auto back2 = json::parse(json(small).dump());
  ASSERT_TRUE(back2.has_value());
  EXPECT_EQ(back2->as_i64(), small);
}

TEST(Json, DoublesAlwaysRenderWithDecimalPoint) {
  // 2.0 must not serialize as "2": a re-parse would change the numeric
  // kind and a strict consumer would see an integer where a gauge was.
  const std::string s = json(2.0).dump();
  EXPECT_NE(s.find('.'), std::string::npos) << s;
  const auto back = json::parse(s);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_number());
  EXPECT_DOUBLE_EQ(back->as_double(), 2.0);
}

TEST(Json, NonFiniteSerializesAsNull) {
  EXPECT_EQ(json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  json o = json::object();
  o["zebra"] = json(1);
  o["alpha"] = json(2);
  o["mid"] = json(3);
  EXPECT_EQ(o.dump(), R"({"zebra":1,"alpha":2,"mid":3})");
  ASSERT_EQ(o.items().size(), 3u);
  EXPECT_EQ(o.items()[0].first, "zebra");
  EXPECT_EQ(o.items()[2].first, "mid");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(json("a\"b\\c").dump(), R"("a\"b\\c")");
  EXPECT_EQ(json("line\nbreak\ttab").dump(), R"("line\nbreak\ttab")");
  EXPECT_EQ(json(std::string("nul\0byte", 8)).dump(), R"("nul\u0000byte")");
}

TEST(Json, ParseEscapes) {
  const auto j = json::parse(R"("a\n\t\"\\\u0041\u00e9")");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->as_string(), "a\n\t\"\\A\xc3\xa9");
}

TEST(Json, ParseSurrogatePair) {
  const auto j = json::parse(R"("\ud83d\ude00")");  // 😀 U+1F600
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, RoundTripNestedDocument) {
  json doc = json::object();
  doc["name"] = json("bfs");
  doc["ok"] = json(true);
  doc["count"] = json(std::uint64_t{12345678901234567890u});
  doc["rate"] = json(0.25);
  json arr = json::array();
  arr.push_back(json(1));
  arr.push_back(json("two"));
  arr.push_back(json());
  doc["mixed"] = std::move(arr);
  json inner = json::object();
  inner["deep"] = json(-1);
  doc["nested"] = std::move(inner);

  const auto back = json::parse(doc.dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, doc);
  EXPECT_EQ(back->dump(), doc.dump());
}

TEST(Json, ParseWhitespaceTolerance) {
  const auto j = json::parse(" \n\t{ \"a\" : [ 1 , 2 ] }\r\n ");
  ASSERT_TRUE(j.has_value());
  ASSERT_NE(j->find("a"), nullptr);
  EXPECT_EQ(j->find("a")->size(), 2u);
}

TEST(Json, MalformedInputsRejected) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "\"unterminated", "{\"a\":}", "{\"a\":1,}",
        "[1,]", "{'a':1}", "1 2", "nullx", "- 1", "+1", "01x", "{\"a\" 1}",
        "\"bad\\escape\"", "\"\\u12\"", "[}", "NaN"}) {
    EXPECT_FALSE(json::parse(bad).has_value()) << "accepted: " << bad;
  }
}

TEST(Json, TrailingGarbageRejected) {
  EXPECT_FALSE(json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(json::parse("[1,2],").has_value());
}

TEST(Json, DepthCapRejectsPathologicalNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(json::parse(deep).has_value());
  // ...but reasonable nesting is fine.
  std::string ok(100, '[');
  ok += "1";
  ok += std::string(100, ']');
  EXPECT_TRUE(json::parse(ok).has_value());
}

TEST(Json, EqualityAcrossIntegerKinds) {
  EXPECT_EQ(json(std::int64_t{5}), json(std::uint64_t{5}));
  EXPECT_NE(json(std::int64_t{-1}),
            json(std::numeric_limits<std::uint64_t>::max()));
  EXPECT_NE(json(1), json(true));
  EXPECT_NE(json("1"), json(1));
}

TEST(Json, FindAndIndexing) {
  json o = json::object();
  o["k"] = json(9);
  EXPECT_EQ(o.find("missing"), nullptr);
  ASSERT_NE(o.find("k"), nullptr);
  EXPECT_EQ(o.find("k")->as_u64(), 9u);
  EXPECT_EQ(json(3).find("k"), nullptr);  // non-object lookup is safe

  json a = json::array();
  a.push_back(json("x"));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.at(0).as_string(), "x");
  EXPECT_EQ(json("scalar").size(), 0u);
}

}  // namespace
}  // namespace sfg::obs
