/// Zero-allocation tests for the memory-attribution hot path (DESIGN.md
/// §15): a mem_tracker::set() must never touch the heap — not while the
/// subsystem gate is off (single relaxed load + compare), and not while
/// attribution is on with an armed budget (atomic adds on a preallocated
/// slot block plus the fixed pending-transition ring).  A std::function
/// or vector sneaking into the charge path would show up here.
///
/// Own binary: this TU replaces global operator new/delete with counting
/// versions (same pattern as tests/storage/storage_alloc_test.cpp); two
/// such TUs cannot share a binary.
#include "obs/mem.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "obs/metrics.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sfg::obs {
namespace {

std::uint64_t charge_phase_allocations(mem_tracker& t) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 4096; ++round) {
    t.set(static_cast<std::uint64_t>(round % 7) * 4096);
    mem_charge(mem_subsystem::other, 128);
    mem_release(mem_subsystem::other, 128);
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(MemAlloc, DisabledChargePathAllocatesNothing) {
  const bool saved = detail::toggles().mem.load();
  set_mem_enabled(false);
  ASSERT_FALSE(mem_on());
  mem_tracker t(mem_subsystem::frontier);
  EXPECT_EQ(charge_phase_allocations(t), 0u)
      << "mem_tracker::set allocated with attribution off";
  set_mem_enabled(saved);
}

TEST(MemAlloc, ArmedChargePathAllocatesNothing) {
  const bool saved = detail::toggles().mem.load();
  const std::uint64_t saved_budget = mem_budget();
  set_mem_enabled(true);
  // Tight budget so the loop crosses pressure thresholds constantly:
  // note_transition (counter bumps + pending ring) must stay on the
  // no-allocation path even while the ladder is flapping.
  set_mem_budget(8192);
  mem_clear();

  mem_tracker t(mem_subsystem::frontier);
  t.set(1);  // first charge resolves the rank slot (may allocate the block)
  mem_pressure_poll();  // drain anything pending before measuring

  EXPECT_EQ(charge_phase_allocations(t), 0u)
      << "mem_tracker::set allocated with attribution on and budget armed";

  t.set(0);
  mem_pressure_poll();
  mem_clear();
  set_mem_budget(saved_budget);
  set_mem_enabled(saved);
}

}  // namespace
}  // namespace sfg::obs
