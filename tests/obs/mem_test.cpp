/// Unit suite for per-subsystem memory attribution (DESIGN.md §15):
/// tracker charge/release pairing, gate-flip balance, peak monotonicity,
/// the pressure ladder's thresholds + hysteresis + stepwise transitions,
/// poll-side callback dispatch, the stats-traits round-trip, and the
/// sfg-mem/1 section validator shared with sfg_report_check / sfg_mem.
#include "obs/mem.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_fields.hpp"

namespace sfg::obs {
namespace {

/// Every test runs with attribution forced on, the ladder disarmed, and
/// a zeroed ledger; teardown restores the ambient (env-derived) state.
class MemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_mem_ = detail::toggles().mem.load();
    saved_budget_ = mem_budget();
    set_mem_enabled(true);
    set_mem_budget(0);
    mem_clear();
  }
  void TearDown() override {
    mem_clear();
    set_mem_budget(saved_budget_);
    set_mem_enabled(saved_mem_);
  }

 private:
  bool saved_mem_ = false;
  std::uint64_t saved_budget_ = 0;
};

// The main thread has no rank, so its charges land on the rank = -1 slot.
constexpr int kMe = -1;

TEST_F(MemTest, TrackerChargeReleasePairing) {
  {
    mem_tracker t(mem_subsystem::frontier);
    t.set(4096);
    EXPECT_EQ(t.charged(), 4096u);
    EXPECT_EQ(mem_current(mem_subsystem::frontier, kMe), 4096u);
    EXPECT_EQ(mem_accounted_current(), 4096u);
    t.set(1024);  // shrink releases the delta
    EXPECT_EQ(mem_current(mem_subsystem::frontier, kMe), 1024u);
  }
  // Destructor releases the remainder.
  EXPECT_EQ(mem_current(mem_subsystem::frontier, kMe), 0u);
  EXPECT_EQ(mem_accounted_current(), 0u);
}

TEST_F(MemTest, TrackerIsInertWhileGateOff) {
  set_mem_enabled(false);
  ASSERT_FALSE(mem_on());  // metrics/ts would re-imply it
  mem_tracker t(mem_subsystem::queue_buckets);
  t.set(1 << 20);
  EXPECT_EQ(t.charged(), 0u);
  EXPECT_EQ(mem_current(mem_subsystem::queue_buckets, kMe), 0u);
  set_mem_enabled(true);
}

TEST_F(MemTest, TrackerReleasesBalanceAfterGateFlip) {
  // Charged while on, gate turned off mid-flight: the release must still
  // land on the same slot so the ledger returns to zero.
  mem_tracker t(mem_subsystem::cache_frames);
  t.set(8192);
  ASSERT_EQ(mem_current(mem_subsystem::cache_frames, kMe), 8192u);
  set_mem_enabled(false);
  t.set(0);
  EXPECT_EQ(t.charged(), 0u);
  EXPECT_EQ(mem_current(mem_subsystem::cache_frames, kMe), 0u);
  set_mem_enabled(true);
}

TEST_F(MemTest, TrackerMoveTransfersCharge) {
  mem_tracker a(mem_subsystem::mailbox_arena);
  a.set(1000);
  mem_tracker b(std::move(a));
  EXPECT_EQ(a.charged(), 0u);
  EXPECT_EQ(b.charged(), 1000u);
  mem_tracker c(mem_subsystem::mailbox_arena);
  c.set(500);
  swap(b, c);
  EXPECT_EQ(b.charged(), 500u);
  EXPECT_EQ(c.charged(), 1000u);
  // Two live trackers, one subsystem: the slot sees the sum.
  EXPECT_EQ(mem_current(mem_subsystem::mailbox_arena, kMe), 1500u);
}

TEST_F(MemTest, PeakIsMonotonicAcrossReleaseAndRecharge) {
  mem_tracker t(mem_subsystem::builder_scratch);
  t.set(10000);
  t.set(0);
  t.set(3000);
  EXPECT_EQ(mem_current(mem_subsystem::builder_scratch, kMe), 3000u);
  EXPECT_EQ(mem_peak(mem_subsystem::builder_scratch, kMe), 10000u);
  EXPECT_GE(mem_peak(mem_subsystem::builder_scratch, kMe),
            mem_current(mem_subsystem::builder_scratch, kMe));
  EXPECT_EQ(mem_accounted_peak(), 10000u);
}

TEST_F(MemTest, FreeFunctionReleaseSaturatesAtZero) {
  mem_charge(mem_subsystem::other, 100);
  mem_release(mem_subsystem::other, 1000);  // over-release must not wrap
  EXPECT_EQ(mem_current(mem_subsystem::other, kMe), 0u);
  EXPECT_EQ(mem_peak(mem_subsystem::other, kMe), 100u);
}

TEST_F(MemTest, PressureLadderThresholdsAndHysteresis) {
  set_mem_budget(1000);
  mem_clear();
  mem_tracker t(mem_subsystem::frontier);

  t.set(700);  // below soft-up (750)
  EXPECT_EQ(mem_pressure(), mem_pressure_level::ok);
  t.set(750);  // soft rises at budget - budget/4
  EXPECT_EQ(mem_pressure(), mem_pressure_level::soft);
  t.set(999);  // still soft
  EXPECT_EQ(mem_pressure(), mem_pressure_level::soft);
  t.set(1000);  // hard rises at the budget
  EXPECT_EQ(mem_pressure(), mem_pressure_level::hard);
  t.set(900);  // hysteresis: hard holds until below budget - budget/8
  EXPECT_EQ(mem_pressure(), mem_pressure_level::hard);
  t.set(874);
  EXPECT_EQ(mem_pressure(), mem_pressure_level::soft);
  t.set(500);  // soft holds until below budget/2
  EXPECT_EQ(mem_pressure(), mem_pressure_level::soft);
  t.set(499);
  EXPECT_EQ(mem_pressure(), mem_pressure_level::ok);

  const auto counts = mem_pressure_counts();
  EXPECT_EQ(counts.to_hard, 1u);
  EXPECT_EQ(counts.to_soft, 2u);  // up at 750, back down at 874
  EXPECT_EQ(counts.to_ok, 1u);
  set_mem_budget(0);
}

TEST_F(MemTest, SingleLargeChargeRecordsEveryRung) {
  // ok -> hard in one charge must still record the soft transition the
  // process stepped through — the CI smoke greps for exactly that.
  set_mem_budget(1000);
  mem_clear();
  mem_tracker t(mem_subsystem::frontier);
  t.set(5000);
  EXPECT_EQ(mem_pressure(), mem_pressure_level::hard);
  const auto counts = mem_pressure_counts();
  EXPECT_EQ(counts.to_soft, 1u);
  EXPECT_EQ(counts.to_hard, 1u);
  set_mem_budget(0);
}

TEST_F(MemTest, PressureCallbacksDispatchFromPoll) {
  set_mem_budget(1000);
  mem_clear();
  std::vector<mem_pressure_level> seen;
  const int id = mem_register_pressure_callback(
      [&](mem_pressure_level p) { seen.push_back(p); });

  mem_tracker t(mem_subsystem::frontier);
  t.set(2000);  // charge queues the transitions but must not dispatch
  EXPECT_TRUE(seen.empty());
  mem_pressure_poll();
  ASSERT_EQ(seen.size(), 2u);  // stepwise: soft, then hard
  EXPECT_EQ(seen[0], mem_pressure_level::soft);
  EXPECT_EQ(seen[1], mem_pressure_level::hard);

  mem_unregister_pressure_callback(id);
  t.set(0);
  mem_pressure_poll();
  EXPECT_EQ(seen.size(), 2u);  // unregistered: no further dispatch
  set_mem_budget(0);
}

TEST_F(MemTest, RssGroundTruthIsLive) {
  const auto s = mem_sample_rss();
  EXPECT_GT(s.rss_bytes, 0u);
  EXPECT_GT(s.max_rss_bytes, 0u);
  EXPECT_GT(mem_baseline_rss(), 0u);
  EXPECT_GE(mem_peak_rss(), mem_baseline_rss());
}

TEST_F(MemTest, SnapshotAndStatsTraitsRoundTrip) {
  mem_tracker a(mem_subsystem::frontier);
  mem_tracker b(mem_subsystem::cache_frames);
  a.set(4096);
  b.set(1024);

  const mem_stats snap = mem_snapshot(kMe);
  EXPECT_EQ(snap.frontier, 4096.0);
  EXPECT_EQ(snap.cache_frames, 1024.0);
  EXPECT_EQ(snap.accounted, 4096.0 + 1024.0);
  EXPECT_GT(snap.peak_log2.count, 0u);

  const json j = stats_to_json(snap);
  ASSERT_NE(j.find("frontier"), nullptr);
  EXPECT_EQ(j.find("frontier")->as_double(), 4096.0);
  ASSERT_NE(j.find("peak_log2"), nullptr);

  mem_stats sum = snap;
  stats_add(sum, snap);
  EXPECT_EQ(sum.frontier, 2 * 4096.0);
  mem_stats zero = snap;
  stats_reset(zero);
  EXPECT_EQ(zero.accounted, 0.0);
}

TEST_F(MemTest, SectionJsonPassesItsOwnValidator) {
  set_mem_budget(1 << 20);
  mem_clear();
  mem_tracker a(mem_subsystem::frontier);
  mem_tracker b(mem_subsystem::mailbox_arena);
  a.set(8192);
  b.set(4096);
  (void)mem_sample_rss();  // make sure rss_bytes is non-zero

  json rows = json::array();
  rows.push_back(mem_rank_json(kMe));
  const json section = mem_section_json(std::move(rows));

  std::vector<std::string> errors;
  EXPECT_TRUE(mem_validate(section, &errors))
      << (errors.empty() ? "?" : errors.front());
  EXPECT_TRUE(errors.empty());

  ASSERT_NE(section.find("schema"), nullptr);
  EXPECT_EQ(section.find("schema")->as_string(), "sfg-mem/1");
  EXPECT_EQ(section.find("budget")->as_u64(), std::uint64_t{1} << 20);
  EXPECT_EQ(section.find("accounted_current")->as_u64(), 8192u + 4096u);
  set_mem_budget(0);
}

TEST_F(MemTest, ValidatorRejectsMalformedSections) {
  std::vector<std::string> errors;

  // Wrong schema tag.
  json bad = json::object();
  bad["schema"] = json("sfg-mem/999");
  EXPECT_FALSE(mem_validate(bad, &errors));
  EXPECT_FALSE(errors.empty());

  // A structurally valid section with one row whose subsystem peak is
  // below its current — the invariant mem_rank_json clamps by
  // construction, so a validator that misses it has rotted.  Rows are
  // tampered before mem_section_json wraps them (json exposes no mutable
  // array element access).
  mem_tracker t(mem_subsystem::frontier);
  t.set(4096);
  (void)mem_sample_rss();
  json row = mem_rank_json(kMe);
  row["subsystems"]["frontier"]["peak"] = json(std::uint64_t{1});
  json rows = json::array();
  rows.push_back(std::move(row));
  const json section = mem_section_json(std::move(rows));
  errors.clear();
  EXPECT_FALSE(mem_validate(section, &errors));
  EXPECT_FALSE(errors.empty());

  // Subsystem entry replaced with a non-object.
  json row2 = mem_rank_json(kMe);
  row2["subsystems"]["frontier"] = json("not-an-object");
  json rows2 = json::array();
  rows2.push_back(std::move(row2));
  const json section2 = mem_section_json(std::move(rows2));
  errors.clear();
  EXPECT_FALSE(mem_validate(section2, &errors));
  EXPECT_FALSE(errors.empty());
}

TEST_F(MemTest, MemClearResetsLedgerAndLadder) {
  set_mem_budget(100);
  mem_tracker t(mem_subsystem::frontier);
  t.set(500);
  ASSERT_EQ(mem_pressure(), mem_pressure_level::hard);
  mem_clear();
  EXPECT_EQ(mem_current(mem_subsystem::frontier, kMe), 0u);
  EXPECT_EQ(mem_peak(mem_subsystem::frontier, kMe), 0u);
  EXPECT_EQ(mem_accounted_current(), 0u);
  EXPECT_EQ(mem_pressure(), mem_pressure_level::ok);
  const auto counts = mem_pressure_counts();
  EXPECT_EQ(counts.to_soft + counts.to_hard + counts.to_ok, 0u);
  // The tracker still believes it holds 500 bytes; releasing after the
  // clear must saturate, not wrap the zeroed slot.
  t.set(0);
  EXPECT_EQ(mem_current(mem_subsystem::frontier, kMe), 0u);
  set_mem_budget(0);
}

}  // namespace
}  // namespace sfg::obs
