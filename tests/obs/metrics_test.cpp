/// Metrics-registry tests: handle stability, concurrent counter
/// exactness, snapshot shape, and the central cost-model claim — a
/// disabled instrumentation site performs no allocation and no clock
/// reads, just one predictable branch.
///
/// This TU replaces global operator new/delete with counting versions so
/// the zero-allocation claim is testable.  The replacement is linked into
/// the whole test binary, which is fine: it only counts, behavior is
/// unchanged.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/phase.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sfg::obs {
namespace {

/// Restore the process-global toggles on scope exit so tests in this
/// binary can't leak enabled metrics/tracing into each other.
struct toggle_guard {
  bool metrics = metrics_on();
  bool trace = trace_on();
  ~toggle_guard() {
    set_metrics_enabled(metrics);
    set_trace_enabled(trace);
  }
};

TEST(Metrics, HandlesAreStable) {
  auto& a = metrics_registry::instance().get_counter("test.stable");
  auto& b = metrics_registry::instance().get_counter("test.stable");
  EXPECT_EQ(&a, &b);
  auto& other = metrics_registry::instance().get_counter("test.stable2");
  EXPECT_NE(&a, &other);
}

TEST(Metrics, CounterGatedOnToggle) {
  toggle_guard guard;
  auto& c = metrics_registry::instance().get_counter("test.gated");
  c.reset();

  set_metrics_enabled(false);
  c.add(5);
  EXPECT_EQ(c.value(), 0u);

  set_metrics_enabled(true);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
  c.add();  // default increment
  EXPECT_EQ(c.value(), 6u);
}

TEST(Metrics, ConcurrentCounterIsExact) {
  toggle_guard guard;
  set_metrics_enabled(true);
  auto& c = metrics_registry::instance().get_counter("test.concurrent");
  c.reset();

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Metrics, ConcurrentRegistrationIsSafe) {
  toggle_guard guard;
  set_metrics_enabled(true);
  // All threads race to register and bump the same 4 names; each name
  // must resolve to one counter and the totals must be exact.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const char* name = (i % 4 == 0)   ? "test.race.a"
                           : (i % 4 == 1) ? "test.race.b"
                           : (i % 4 == 2) ? "test.race.c"
                                          : "test.race.d";
        metrics_registry::instance().get_counter(name).add(1);
      }
      (void)t;
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (const char* name :
       {"test.race.a", "test.race.b", "test.race.c", "test.race.d"}) {
    total += metrics_registry::instance().get_counter(name).value();
  }
  EXPECT_EQ(total, kThreads * kPerThread);
}

TEST(Metrics, GaugeAndTimer) {
  toggle_guard guard;
  set_metrics_enabled(true);

  auto& g = metrics_registry::instance().get_gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  auto& t = metrics_registry::instance().get_timer("test.timer");
  t.reset();
  t.record(100);
  t.record(300);
  t.record(200);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_EQ(t.total_ns(), 600u);
  EXPECT_EQ(t.max_ns(), 300u);
}

TEST(Metrics, ScopedTimerRecordsOnlyWhenEnabled) {
  toggle_guard guard;
  auto& t = metrics_registry::instance().get_timer("test.scoped");
  t.reset();

  set_metrics_enabled(false);
  { scoped_timer st(t); }
  EXPECT_EQ(t.count(), 0u);

  set_metrics_enabled(true);
  { scoped_timer st(t); }
  EXPECT_EQ(t.count(), 1u);
}

TEST(Metrics, SnapshotShape) {
  toggle_guard guard;
  set_metrics_enabled(true);
  metrics_registry::instance().get_counter("test.snap.count").add(7);
  metrics_registry::instance().get_gauge("test.snap.gauge").set(1.5);
  metrics_registry::instance().get_timer("test.snap.timer").record(1'000'000);

  const json snap = metrics_registry::instance().snapshot();
  ASSERT_TRUE(snap.is_object());
  for (const char* section : {"counters", "gauges", "timers"}) {
    ASSERT_NE(snap.find(section), nullptr) << section;
    EXPECT_TRUE(snap.find(section)->is_object()) << section;
  }
  const json* c = snap.find("counters")->find("test.snap.count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->as_u64(), 7u);
  const json* t = snap.find("timers")->find("test.snap.timer");
  ASSERT_NE(t, nullptr);
  ASSERT_NE(t->find("count"), nullptr);
  EXPECT_EQ(t->find("count")->as_u64(), 1u);

  // Snapshot must round-trip through the serializer.
  const auto back = json::parse(snap.dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, snap);
}

TEST(Metrics, ResetValuesKeepsRegistration) {
  toggle_guard guard;
  set_metrics_enabled(true);
  auto& c = metrics_registry::instance().get_counter("test.reset");
  c.add(3);
  metrics_registry::instance().reset_values();
  EXPECT_EQ(c.value(), 0u);
  // Same handle still works after the reset.
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Metrics, DisabledSitesDoNotAllocate) {
  toggle_guard guard;
  set_metrics_enabled(false);
  set_trace_enabled(false);

  // Resolve handles up front — the documented pattern for hot sites.
  auto& c = metrics_registry::instance().get_counter("test.noalloc");
  auto& g = metrics_registry::instance().get_gauge("test.noalloc.g");
  auto& t = metrics_registry::instance().get_timer("test.noalloc.t");

  const std::size_t events_before = trace_event_count();
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    c.add(1);
    g.set(1.0);
    { scoped_timer st(t); }
    { trace_span span("noalloc", "test"); span.set_arg("i", i); }
    trace_instant("noalloc.i", "test");
    trace_counter_event("noalloc.c", 1.0);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "disabled instrumentation sites must not allocate";
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(trace_event_count(), events_before)
      << "disabled tracing must not record events";
}

TEST(Metrics, FlightRecordHotPathDoesNotAllocate) {
  // The flight recorder is ON by default, so its steady-state cost matters
  // more than any other site's: after the first event faults in this
  // thread's ring, recording must be allocation-free.
  const bool saved = flight_on();
  set_flight_enabled(true);
  flight_record(flight_kind::queue_batch, 0, 0);  // warm up: ring + TLS cache

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    flight_record(flight_kind::queue_batch, static_cast<std::uint64_t>(i), 1);
    flight_record(flight_kind::mbox_packet, 4, 256);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "flight_record must not allocate after the ring exists";
  set_flight_enabled(saved);
}

TEST(Metrics, DisabledFlightAndSamplingDoNotAllocate) {
  toggle_guard guard;
  set_trace_enabled(false);
  const bool saved_flight = flight_on();
  set_flight_enabled(false);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  trace_ctx any_ctx = 0;
  for (int i = 0; i < 10'000; ++i) {
    flight_record(flight_kind::queue_batch, 1, 2);
    // Tracing off: the sampling decision is a single branch.
    any_ctx |= sample_trace_ctx(0, static_cast<std::uint64_t>(i));
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(any_ctx, 0u) << "sampling must be off while tracing is off";
  EXPECT_EQ(after - before, 0u)
      << "disabled flight recorder and trace sampling must not allocate";
  set_flight_enabled(saved_flight);
}

TEST(Metrics, DisabledPhaseAndTimeseriesDoNotAllocate) {
  // phase_scope wraps the poll loop, route_record and the page cache's
  // I/O sections; ts_poll runs once per poll iteration.  With metrics and
  // SFG_TS_INTERVAL_MS both off they must cost one branch each — no clock
  // reads, no allocation, no thread-local accounting.
  toggle_guard guard;
  const std::uint32_t saved_interval = ts_interval_ms();
  set_metrics_enabled(false);
  set_ts_interval_ms(0);  // clears the ts toggle and any live samplers

  const std::uint64_t entries_before = phase_entries(phase::visit);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    { const phase_scope ps(phase::visit); }
    {
      const phase_scope outer(phase::poll);
      const phase_scope inner(phase::term);
    }
    ts_poll();
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "disabled phase scopes and ts_poll must not allocate";
  EXPECT_EQ(phase_entries(phase::visit), entries_before)
      << "disabled phase scopes must not record entries";
  EXPECT_EQ(ts_samples_recorded(), 0u);
  set_ts_interval_ms(saved_interval);
}

TEST(Metrics, DisabledSpanSitesDoNotAllocate) {
  // SFG_SPANS off is the default: a span_record is one branch, span_mark
  // does not even read the clock, and phase scopes stay span-free.
  toggle_guard guard;
  set_metrics_enabled(false);
  const bool saved = spans_on();
  set_spans_enabled(false);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    span_record(span_kind::phase_seg, 1, 2, 3, 0);
    span_mark(span_kind::mbox_send, 1, static_cast<std::uint64_t>(i));
    { const phase_scope ps(phase::visit); }
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "disabled span sites must not allocate";
  EXPECT_EQ(span_recorded_here(), 0u);
  set_spans_enabled(saved);
  phase_clear_thread();
}

TEST(Metrics, SpanRecordHotPathDoesNotAllocate) {
  // With SFG_SPANS on, the first record faults in this rank's ring (and
  // the thread-local cache); everything after — including the phase-hook
  // segments a phase_scope emits — must be allocation-free.
  toggle_guard guard;
  set_metrics_enabled(false);
  const bool saved = spans_on();
  set_spans_enabled(true);
  span_clear();
  span_record(span_kind::phase_seg, 1, 2);          // warm up: ring + TLS
  { const phase_scope warm(phase::visit); }         // warm up: phase TLS

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    span_record(span_kind::phase_seg, 1, 2, 3, 0);
    span_mark(span_kind::mbox_recv, 0, static_cast<std::uint64_t>(i));
    { const phase_scope ps(phase::visit); }
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "span recording must not allocate after the ring exists";
  EXPECT_GE(span_recorded_here(), 20'000u);
  set_spans_enabled(saved);
  span_clear();
  phase_clear_thread();
}

}  // namespace
}  // namespace sfg::obs
