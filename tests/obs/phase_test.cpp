/// Phase-attribution profiler tests (obs/phase.hpp): the self-time
/// accounting contract — a child scope's wall time is excluded from its
/// parent's self time, so the slots partition accounted time — plus
/// disabled no-op behavior, depth-overflow safety, and the stats_traits
/// reflection that folds phase_stats into traversal reports.
#include "obs/phase.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stats_fields.hpp"
#include "obs/timeseries.hpp"

namespace sfg::obs {
namespace {

struct phase_guard {
  bool metrics = metrics_on();
  ~phase_guard() {
    set_metrics_enabled(metrics);
    phase_clear_thread();
  }
};

void spin_for(std::chrono::microseconds us) {
  const auto end = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < end) {
  }
}

TEST(Phase, DisabledScopesRecordNothing) {
  phase_guard guard;
  set_metrics_enabled(false);
  phase_clear_thread();
  {
    const phase_scope ps(phase::visit);
    spin_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(phase_entries(phase::visit), 0u);
  EXPECT_EQ(phase_snapshot().total_ns(), 0u);
}

TEST(Phase, SelfTimeAccumulatesPerPhase) {
  phase_guard guard;
  set_metrics_enabled(true);
  phase_clear_thread();
  {
    const phase_scope ps(phase::poll);
    spin_for(std::chrono::microseconds(500));
  }
  const phase_stats s = phase_snapshot();
  EXPECT_EQ(phase_entries(phase::poll), 1u);
  EXPECT_GE(s.poll_ns, 400'000u);
  EXPECT_EQ(s.visit_ns, 0u);
  EXPECT_EQ(s.total_ns(), s.poll_ns);
}

TEST(Phase, ChildTimeExcludedFromParentSelfTime) {
  // The partition property everything downstream relies on: parent self
  // time is its wall time minus its children's wall time, so per-phase
  // fractions of an interval can sum to at most 1.
  phase_guard guard;
  set_metrics_enabled(true);
  phase_clear_thread();
  {
    const phase_scope outer(phase::idle);
    spin_for(std::chrono::microseconds(300));
    {
      const phase_scope inner(phase::io_wait);
      spin_for(std::chrono::microseconds(1000));
    }
    spin_for(std::chrono::microseconds(300));
  }
  const phase_stats s = phase_snapshot();
  EXPECT_GE(s.io_wait_ns, 800'000u);
  // Outer self time covers only its own ~600us of spinning, not the
  // child's 1000us; generous upper bound to stay scheduler-proof.
  EXPECT_GE(s.idle_ns, 400'000u);
  EXPECT_LT(s.idle_ns, s.io_wait_ns)
      << "child wall time must not count into the parent's self time";
}

TEST(Phase, SiblingAndRepeatedScopesAllAccount) {
  phase_guard guard;
  set_metrics_enabled(true);
  phase_clear_thread();
  for (int i = 0; i < 3; ++i) {
    const phase_scope outer(phase::visit);
    {
      const phase_scope a(phase::scan);
      spin_for(std::chrono::microseconds(100));
    }
    {
      const phase_scope b(phase::mbox_pack);
      spin_for(std::chrono::microseconds(100));
    }
  }
  EXPECT_EQ(phase_entries(phase::visit), 3u);
  EXPECT_EQ(phase_entries(phase::scan), 3u);
  EXPECT_EQ(phase_entries(phase::mbox_pack), 3u);
  const phase_stats s = phase_snapshot();
  EXPECT_GT(s.scan_ns, 0u);
  EXPECT_GT(s.mbox_pack_ns, 0u);
}

TEST(Phase, DepthOverflowFoldsIntoEnclosingPhase) {
  // Scopes past kMaxPhaseDepth (16) stay disarmed: their time folds into
  // the deepest armed ancestor instead of corrupting the stack.
  phase_guard guard;
  set_metrics_enabled(true);
  phase_clear_thread();
  const std::uint64_t before = phase_entries(phase::scan);
  {
    std::vector<std::unique_ptr<phase_scope>> deep;
    for (int i = 0; i < 40; ++i) {
      deep.push_back(std::make_unique<phase_scope>(phase::scan));
    }
    // Unwind in LIFO order.
    while (!deep.empty()) deep.pop_back();
  }
  // Exactly the armed (first 16) scopes record entries; the rest no-op.
  EXPECT_EQ(phase_entries(phase::scan) - before, 16u);
}

TEST(Phase, SnapshotDeltaAndTraitsRoundTrip) {
  phase_guard guard;
  set_metrics_enabled(true);
  phase_clear_thread();
  const phase_stats start = phase_snapshot();
  {
    const phase_scope ps(phase::term);
    spin_for(std::chrono::microseconds(200));
  }
  const phase_stats delta = stats_delta(phase_snapshot(), start);
  EXPECT_GT(delta.term_ns, 0u);
  EXPECT_EQ(delta.visit_ns, 0u);

  const json j = stats_to_json(delta);
  ASSERT_TRUE(j.is_object());
  ASSERT_NE(j.find("term_ns"), nullptr);
  EXPECT_EQ(j.find("term_ns")->as_u64(), delta.term_ns);
  ASSERT_NE(j.find("idle_ns"), nullptr);

  phase_stats sum{};
  stats_add(sum, delta);
  stats_add(sum, delta);
  EXPECT_EQ(sum.term_ns, 2 * delta.term_ns);
}

TEST(Phase, EnabledViaTimeseriesToggleAlone) {
  // phase_on() must arm scopes when only the sampler is consuming them.
  phase_guard guard;
  const std::uint32_t saved_interval = ts_interval_ms();
  set_metrics_enabled(false);
  set_ts_interval_ms(50);
  EXPECT_TRUE(phase_on());
  phase_clear_thread();
  {
    const phase_scope ps(phase::mbox_flush);
    spin_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(phase_entries(phase::mbox_flush), 1u);
  EXPECT_GT(phase_snapshot().mbox_flush_ns, 0u);
  set_ts_interval_ms(saved_interval);
  ts_clear();
}

}  // namespace
}  // namespace sfg::obs
