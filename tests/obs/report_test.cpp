/// Run-report and stats-reflection tests, ending with the observability
/// acceptance test: a chaos-seeded distributed BFS with metrics + tracing
/// live must produce a per-rank trace containing the traversal, mailbox
/// and termination spans, a registry whose "traversal.*" counters agree
/// with the queue's own stats, and a valid sfg-metrics/1 report.
#include "obs/run_report.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/bfs.hpp"
#include "gen/generators.hpp"
#include "graph/distributed_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_fields.hpp"
#include "obs/trace.hpp"
#include "runtime/fault.hpp"
#include "runtime/runtime.hpp"

namespace {

// A self-contained reflected stats pair exercising the nested case.
struct inner_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
struct outer_stats {
  std::uint64_t ops = 0;
  double ratio = 0;
  inner_stats cache{};
};

}  // namespace

template <>
struct sfg::obs::stats_traits<inner_stats> {
  static constexpr auto fields =
      std::make_tuple(stats_field{"hits", &inner_stats::hits},
                      stats_field{"misses", &inner_stats::misses});
};
template <>
struct sfg::obs::stats_traits<outer_stats> {
  static constexpr auto fields =
      std::make_tuple(stats_field{"ops", &outer_stats::ops},
                      stats_field{"ratio", &outer_stats::ratio},
                      stats_field{"cache", &outer_stats::cache});
};

namespace sfg::obs {
namespace {

struct obs_guard {
  bool metrics = metrics_on();
  bool trace = trace_on();
  std::string report = metrics_report_path();
  ~obs_guard() {
    set_metrics_enabled(metrics);
    set_trace_enabled(trace);
    set_metrics_report_path(report);
    clear_traversal_reports();
  }
};

std::optional<json> parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return json::parse(ss.str());
}

TEST(StatsFields, DeltaAddResetConvention) {
  outer_stats before{.ops = 10, .ratio = 0.5, .cache = {.hits = 3, .misses = 1}};
  outer_stats after{.ops = 25, .ratio = 0.75, .cache = {.hits = 8, .misses = 4}};

  using sfg::obs::operator-;
  const outer_stats d = after - before;
  EXPECT_EQ(d.ops, 15u);
  EXPECT_DOUBLE_EQ(d.ratio, 0.25);
  EXPECT_EQ(d.cache.hits, 5u);
  EXPECT_EQ(d.cache.misses, 3u);

  outer_stats total{};
  stats_add(total, before);
  stats_add(total, d);
  EXPECT_EQ(total.ops, after.ops);
  EXPECT_EQ(total.cache.hits, after.cache.hits);

  stats_reset(total);
  EXPECT_EQ(total.ops, 0u);
  EXPECT_EQ(total.cache.misses, 0u);
}

TEST(StatsFields, ToJsonRecursesNestedStructs) {
  const outer_stats s{.ops = 7, .ratio = 1.5, .cache = {.hits = 2, .misses = 0}};
  const json j = stats_to_json(s);
  ASSERT_NE(j.find("ops"), nullptr);
  EXPECT_EQ(j.find("ops")->as_u64(), 7u);
  EXPECT_TRUE(j.find("ratio")->is_number());
  ASSERT_NE(j.find("cache"), nullptr);
  EXPECT_EQ(j.find("cache")->find("hits")->as_u64(), 2u);
}

TEST(StatsFields, ToRegistryFoldsWithPrefix) {
  obs_guard guard;
  set_metrics_enabled(true);
  auto& hits = metrics_registry::instance().get_counter("t.cache.hits");
  auto& ops = metrics_registry::instance().get_counter("t.ops");
  hits.reset();
  ops.reset();

  const outer_stats s{.ops = 4, .ratio = 0.5, .cache = {.hits = 6, .misses = 0}};
  stats_to_registry("t", s);
  stats_to_registry("t", s);  // caller folds deltas; two folds accumulate
  EXPECT_EQ(ops.value(), 8u);
  EXPECT_EQ(hits.value(), 12u);
  EXPECT_DOUBLE_EQ(
      metrics_registry::instance().get_gauge("t.ratio").value(), 0.5);
}

TEST(RunReport, DocumentShapeAndFileRoundTrip) {
  obs_guard guard;
  set_metrics_enabled(true);
  run_report r("unit-test");
  r.add_param("scale", json(12));
  r.add_section("extra", json("value"));

  const json doc = r.to_json();
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "sfg-run-report/1");
  EXPECT_EQ(doc.find("name")->as_string(), "unit-test");
  EXPECT_EQ(doc.find("params")->find("scale")->as_u64(), 12u);
  EXPECT_EQ(doc.find("extra")->as_string(), "value");
  ASSERT_NE(doc.find("metrics"), nullptr);
  EXPECT_NE(doc.find("metrics")->find("counters"), nullptr);

  const std::string path = ::testing::TempDir() + "run_report_test.json";
  ASSERT_TRUE(r.write(path));
  const auto back = parse_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, doc);
  std::remove(path.c_str());
}

TEST(RunReport, WriteFailureReturnsFalse) {
  run_report r("unit-test");
  EXPECT_FALSE(r.write("/nonexistent-dir/sub/report.json"));
  EXPECT_FALSE(write_json_file("/nonexistent-dir/sub/x.json", json(1)));
}

TEST(RunReport, GatherJsonIsRankOrdered) {
  runtime::launch(4, [](runtime::comm& c) {
    json mine = json::object();
    mine["rank"] = c.rank();
    mine["payload"] = std::string(static_cast<std::size_t>(c.rank()) * 3, 'x');
    const json all = gather_json(c, mine);
    ASSERT_EQ(all.size(), 4u);
    for (std::size_t r = 0; r < 4; ++r) {
      ASSERT_NE(all.at(r).find("rank"), nullptr);
      EXPECT_EQ(all.at(r).find("rank")->as_u64(), r);
    }
  });
}

TEST(RunReport, TraversalReportAppendsValidJsonEveryTime) {
  obs_guard guard;
  const std::string path = ::testing::TempDir() + "metrics_report_test.json";
  set_metrics_enabled(true);
  set_metrics_report_path(path);
  clear_traversal_reports();

  for (int i = 1; i <= 3; ++i) {
    json entry = json::object();
    entry["n"] = i;
    append_traversal_report(std::move(entry));
    // Whole-file rewrite: the report must be loadable after every append.
    const auto doc = parse_file(path);
    ASSERT_TRUE(doc.has_value()) << "after append " << i;
    EXPECT_EQ(doc->find("schema")->as_string(), "sfg-metrics/1");
    ASSERT_NE(doc->find("traversals"), nullptr);
    EXPECT_EQ(doc->find("traversals")->size(), static_cast<std::size_t>(i));
    EXPECT_NE(doc->find("metrics"), nullptr);
  }
  std::remove(path.c_str());
}

/// Acceptance: chaos-seeded BFS with full observability on.
TEST(Observability, ChaosBfsProducesTraceReportAndMetrics) {
  obs_guard guard;
  const std::string path = ::testing::TempDir() + "obs_acceptance_report.json";
  set_metrics_enabled(true);
  set_trace_enabled(true);
  set_metrics_report_path(path);
  clear_traversal_reports();
  trace_clear();
  metrics_registry::instance().reset_values();

  constexpr int kRanks = 4;
  const gen::rmat_config rc{.scale = 7, .edge_factor = 8, .seed = 99};
  const auto edges = gen::rmat_slice(rc, 0, rc.num_edges());

  std::uint64_t executed_total = 0;
  runtime::launch(
      kRanks,
      [&](runtime::comm& c) {
        const auto range =
            gen::slice_for_rank(edges.size(), c.rank(), kRanks);
        std::vector<gen::edge64> mine(
            edges.begin() + static_cast<std::ptrdiff_t>(range.begin),
            edges.begin() + static_cast<std::ptrdiff_t>(range.end));
        auto g = graph::build_in_memory_graph(c, mine, {});
        auto result = core::run_bfs(g, g.locate(edges.front().src), {});
        const auto executed = c.all_reduce(
            result.stats.visitors_executed, std::plus<>());
        if (c.rank() == 0) executed_total = executed;
      },
      {}, runtime::fault_params::chaos(7));

  ASSERT_GT(executed_total, 0u);

  // 1. Trace: the async machinery's spans exist, attributed across ranks.
  const json doc = trace_to_json();
  const json& events = *doc.find("traceEvents");
  std::set<std::string> names;
  std::set<std::int64_t> traversal_pids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json& ev = events.at(i);
    const std::string name = ev.find("name")->as_string();
    names.insert(name);
    if (name == "traversal") {
      traversal_pids.insert(ev.find("pid")->as_i64());
    }
  }
  for (const char* expected : {"traversal", "mailbox.flush", "term.wave"}) {
    EXPECT_TRUE(names.contains(expected))
        << "missing trace span: " << expected;
  }
  EXPECT_EQ(traversal_pids.size(), static_cast<std::size_t>(kRanks))
      << "each rank must own its traversal span (pid = rank)";

  // 2. Registry: the published traversal delta matches the real totals.
  const json snap = metrics_registry::instance().snapshot();
  const json* executed = snap.find("counters")->find(
      "traversal.visitors_executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(executed->as_u64(), executed_total);
  const json* sent = snap.find("counters")->find("comm.messages_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_GT(sent->as_u64(), 0u);

  // 3. Report: one sfg-metrics/1 entry, per-rank stats summing to total.
  const auto report = parse_file(path);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->find("schema")->as_string(), "sfg-metrics/1");
  ASSERT_EQ(report->find("traversals")->size(), 1u);
  const json& entry = report->find("traversals")->at(0);
  EXPECT_EQ(entry.find("ranks")->as_u64(), static_cast<std::uint64_t>(kRanks));
  ASSERT_EQ(entry.find("per_rank")->size(), static_cast<std::size_t>(kRanks));
  EXPECT_EQ(entry.find("total")->find("visitors_executed")->as_u64(),
            executed_total);
  std::uint64_t per_rank_sum = 0;
  for (std::size_t r = 0; r < static_cast<std::size_t>(kRanks); ++r) {
    per_rank_sum += entry.find("per_rank")
                        ->at(r)
                        .find("visitors_executed")
                        ->as_u64();
  }
  EXPECT_EQ(per_rank_sum, executed_total);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace sfg::obs
