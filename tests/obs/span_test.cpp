/// Span-ring tests (obs/span.hpp): gating, ring wrap accounting, JSON
/// fragment shape, and the phase enter/exit hooks that turn phase scopes
/// into the self-time segments the critical-path analyzer consumes.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"

namespace sfg::obs {
namespace {

/// Restore the span toggle and capacity (which also discards rings) so
/// tests cannot leak state into each other.
struct span_guard {
  bool saved = spans_on();
  std::size_t cap = span_capacity();
  ~span_guard() {
    set_spans_enabled(saved);
    set_span_capacity(cap);
    phase_clear_thread();
  }
};

std::uint64_t num(const json& o, const char* key) {
  const json* v = o.find(key);
  return (v != nullptr && v->is_number())
             ? static_cast<std::uint64_t>(v->as_double())
             : 0;
}

TEST(Span, DisabledRecordsNothing) {
  span_guard guard;
  set_spans_enabled(true);
  span_clear();
  set_spans_enabled(false);
  span_record(span_kind::phase_seg, 100, 200, 1, 0);
  span_mark(span_kind::mbox_send, 2, 7);
  EXPECT_EQ(span_recorded_here(), 0u);
  const json frag = span_rank_json();
  EXPECT_EQ(num(frag, "recorded"), 0u);
}

TEST(Span, RecordsAndSerializes) {
  span_guard guard;
  set_spans_enabled(true);
  span_clear();
  span_record(span_kind::phase_seg, 100, 200, 3, 1);
  span_mark(span_kind::mbox_send, 2, 7);
  EXPECT_EQ(span_recorded_here(), 2u);

  const json frag = span_rank_json();
  EXPECT_EQ(num(frag, "recorded"), 2u);
  EXPECT_EQ(num(frag, "dropped"), 0u);
  const json* spans = frag.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 2u);

  const json& seg = spans->at(0);
  ASSERT_NE(seg.find("k"), nullptr);
  EXPECT_EQ(seg.find("k")->as_string(), "phase_seg");
  EXPECT_EQ(num(seg, "t0"), 100u);
  EXPECT_EQ(num(seg, "t1"), 200u);
  EXPECT_EQ(num(seg, "a"), 3u);
  EXPECT_EQ(num(seg, "b"), 1u);

  // Markers are zero-length (a fresh process's first trace_now_us() call
  // defines the epoch, so 0 is a legitimate timestamp — no positivity
  // check here).
  const json& mark = spans->at(1);
  EXPECT_EQ(mark.find("k")->as_string(), "mbox_send");
  EXPECT_EQ(num(mark, "t0"), num(mark, "t1"));
  EXPECT_EQ(num(mark, "a"), 2u);
  EXPECT_EQ(num(mark, "b"), 7u);
}

TEST(Span, RingWrapKeepsNewestAndCountsDrops) {
  span_guard guard;
  set_span_capacity(8);
  set_spans_enabled(true);
  span_clear();
  for (std::uint64_t i = 0; i < 20; ++i) {
    span_record(span_kind::phase_seg, i, i + 1, i, 0);
  }
  EXPECT_EQ(span_recorded_here(), 20u);

  const json frag = span_rank_json();
  EXPECT_EQ(num(frag, "recorded"), 20u);
  EXPECT_EQ(num(frag, "dropped"), 12u);
  const json* spans = frag.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 8u);
  // Oldest surviving entry is #12, newest is #19, in order.
  EXPECT_EQ(num(spans->at(0), "a"), 12u);
  EXPECT_EQ(num(spans->at(7), "a"), 19u);
}

TEST(Span, ClearResetsInPlace) {
  span_guard guard;
  set_spans_enabled(true);
  span_clear();
  span_record(span_kind::phase_seg, 1, 2, 0, 0);
  EXPECT_EQ(span_recorded_here(), 1u);
  span_clear();
  EXPECT_EQ(span_recorded_here(), 0u);
  span_record(span_kind::phase_seg, 3, 4, 0, 0);
  EXPECT_EQ(span_recorded_here(), 1u);
}

TEST(Span, PhaseHooksRecordNonOverlappingSelfSegments) {
  span_guard guard;
  set_spans_enabled(true);
  phase_clear_thread();
  span_clear();

  const auto dwell = std::chrono::milliseconds(2);
  {
    const phase_scope outer(phase::visit);
    std::this_thread::sleep_for(dwell);
    {
      const phase_scope inner(phase::poll);
      std::this_thread::sleep_for(dwell);
    }
    std::this_thread::sleep_for(dwell);
  }

  const json frag = span_rank_json();
  const json* spans = frag.find("spans");
  ASSERT_NE(spans, nullptr);
  struct seg {
    std::uint64_t t0, t1, ph, depth;
  };
  std::vector<seg> segs;
  for (std::size_t i = 0; i < spans->size(); ++i) {
    const json& s = spans->at(i);
    if (s.find("k")->as_string() != "phase_seg") continue;
    segs.push_back({num(s, "t0"), num(s, "t1"), num(s, "a"), num(s, "b")});
  }
  // visit-before-poll, poll, visit-after-poll: three maximal self-time
  // intervals, strictly ordered, never overlapping.
  ASSERT_GE(segs.size(), 3u);
  for (const auto& s : segs) EXPECT_LT(s.t0, s.t1);
  for (std::size_t i = 1; i < segs.size(); ++i) {
    EXPECT_LE(segs[i - 1].t1, segs[i].t0) << "segments overlap at " << i;
  }
  EXPECT_EQ(segs[0].ph, static_cast<std::uint64_t>(phase::visit));
  EXPECT_EQ(segs[0].depth, 0u);
  EXPECT_EQ(segs[1].ph, static_cast<std::uint64_t>(phase::poll));
  EXPECT_EQ(segs[1].depth, 1u);
  EXPECT_EQ(segs[2].ph, static_cast<std::uint64_t>(phase::visit));
  EXPECT_EQ(segs[2].depth, 0u);
}

}  // namespace
}  // namespace sfg::obs
