/// Time-series sampler tests (obs/timeseries.hpp): ring wrap-around,
/// interval gating, forced flush, the JSONL file format, and the shared
/// validator's positive and negative paths.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "util/log.hpp"

namespace sfg::obs {
namespace {

namespace fs = std::filesystem;

/// Fresh output directory per test + full teardown: sampling off, sampler
/// table dropped, files removed — later tests (and parallel ctest
/// binaries) never see this test's state.
struct ts_fixture {
  fs::path dir;
  explicit ts_fixture(const char* name)
      : dir(fs::temp_directory_path() /
            (std::string("sfg_ts_test_") + name + "_" +
             std::to_string(::getpid()))) {
    fs::remove_all(dir);
    set_ts_dir(dir.string());
  }
  ~ts_fixture() {
    set_ts_interval_ms(0);
    ts_clear();
    set_ts_dir(".");
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
};

TEST(Timeseries, DisabledPollRecordsNothing) {
  ts_fixture fx("disabled");
  set_ts_interval_ms(0);
  for (int i = 0; i < 100; ++i) ts_poll();
  EXPECT_EQ(ts_samples_recorded(), 0u);
  EXPECT_FALSE(fs::exists(fx.dir));
}

TEST(Timeseries, IntervalGatesSampling) {
  ts_fixture fx("interval");
  // Interval far beyond the test's runtime: polls must not sample (the
  // sampler is created on the first poll, which also anchors last_ns).
  set_ts_interval_ms(60'000);
  for (int i = 0; i < 1000; ++i) ts_poll();
  EXPECT_EQ(ts_samples_recorded(), 0u);
  // A forced flush samples regardless of the interval.
  ts_flush();
  EXPECT_EQ(ts_samples_recorded(), 1u);
}

TEST(Timeseries, RingWrapsKeepingNewestSamples) {
  ts_fixture fx("ring");
  set_ts_interval_ms(60'000);
  const std::size_t total = kTsRingCapacity + 10;
  for (std::size_t i = 0; i < total; ++i) ts_flush();
  EXPECT_EQ(ts_samples_recorded(), total);
  const std::vector<ts_sample> ring = ts_ring_snapshot();
  ASSERT_EQ(ring.size(), kTsRingCapacity);
  // Oldest-to-newest, contiguous, ending at the last sample taken.
  EXPECT_EQ(ring.front().seq, total - kTsRingCapacity);
  EXPECT_EQ(ring.back().seq, total - 1);
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].seq, ring[i - 1].seq + 1);
    EXPECT_GT(ring[i].ts_us, ring[i - 1].ts_us)
        << "ts_us must be strictly monotonic even for back-to-back samples";
  }
}

TEST(Timeseries, EmitsValidJsonlThatTheValidatorAccepts) {
  ts_fixture fx("emit");
  set_ts_interval_ms(60'000);
  // Put some attributed phase time into the window so fractions are
  // exercised (phase_on() is true because the ts toggle is on).
  {
    const phase_scope ps(phase::visit);
  }
  for (int i = 0; i < 5; ++i) ts_flush();

  const std::string path = ts_rank_file(util::thread_rank());
  ASSERT_TRUE(fs::exists(path));
  std::vector<std::string> errors;
  EXPECT_TRUE(ts_validate_file(path, &errors))
      << (errors.empty() ? "?" : errors.front());
  EXPECT_TRUE(errors.empty());

  // Spot-check the first line's shape directly.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto parsed = json::parse(line);
  ASSERT_TRUE(parsed && parsed->is_object());
  EXPECT_EQ(parsed->find("schema")->as_string(), "sfg-timeseries/1");
  ASSERT_NE(parsed->find("phase"), nullptr);
  ASSERT_NE(parsed->find("gauges"), nullptr);
  ASSERT_NE(parsed->find("rates"), nullptr);
  ASSERT_NE(parsed->find("totals"), nullptr);
  EXPECT_EQ(parsed->find("phase")->size(), kPhaseCount);
}

TEST(Timeseries, TrackedCounterDeltasBecomeRates) {
  ts_fixture fx("rates");
  set_ts_interval_ms(60'000);
  ts_flush();  // anchor sample: establishes prev totals
  auto& c = metrics_registry::instance().get_counter(ts_tracked_name(0));
  c.add_raw(1000);
  ts_flush();
  const std::vector<ts_sample> ring = ts_ring_snapshot();
  ASSERT_GE(ring.size(), 2u);
  const ts_sample& last = ring.back();
  EXPECT_GE(last.total[0], 1000u);
  EXPECT_GT(last.rate[0], 0.0) << "a counter bump must surface as a rate";
  for (std::size_t i = 0; i < kTsTracked; ++i) {
    EXPECT_GE(last.rate[i], 0.0);
  }
}

TEST(Timeseries, ValidatorRejectsMalformedFiles) {
  ts_fixture fx("invalid");
  fs::create_directories(fx.dir);

  const auto write_file = [&](const char* name, const std::string& body) {
    const fs::path p = fx.dir / name;
    std::ofstream out(p);
    out << body;
    return p.string();
  };

  std::vector<std::string> errors;
  // Empty file: a rank that sampled nothing is a telemetry bug.
  EXPECT_FALSE(ts_validate_file(write_file("empty.jsonl", ""), &errors));
  EXPECT_FALSE(errors.empty());

  errors.clear();
  EXPECT_FALSE(
      ts_validate_file(write_file("garbage.jsonl", "not json\n"), &errors));

  errors.clear();
  EXPECT_FALSE(ts_validate_file(
      write_file("badschema.jsonl",
                 R"({"schema":"wrong/1","rank":0,"seq":0,"ts_us":1,)"
                 R"("interval_us":1,"phase":{},"gauges":{},"rates":{}})"
                 "\n"),
      &errors));

  // seq/ts_us must strictly increase line to line.
  errors.clear();
  const std::string good =
      R"({"schema":"sfg-timeseries/1","rank":0,"seq":1,"ts_us":10,)"
      R"("interval_us":5,"phase":{"visit":0.5},"gauges":{},"rates":{"x":1.0}})";
  EXPECT_FALSE(ts_validate_file(
      write_file("backwards.jsonl", good + "\n" + good + "\n"), &errors));

  // Negative rate.
  errors.clear();
  EXPECT_FALSE(ts_validate_file(
      write_file("negrate.jsonl",
                 R"({"schema":"sfg-timeseries/1","rank":0,"seq":0,"ts_us":1,)"
                 R"("interval_us":1,"phase":{},"gauges":{},)"
                 R"("rates":{"x":-2.0}})"
                 "\n"),
      &errors));

  // Phase fractions summing above 1.
  errors.clear();
  EXPECT_FALSE(ts_validate_file(
      write_file("overphase.jsonl",
                 R"({"schema":"sfg-timeseries/1","rank":0,"seq":0,"ts_us":1,)"
                 R"("interval_us":1,"phase":{"visit":0.8,"poll":0.7},)"
                 R"("gauges":{},"rates":{}})"
                 "\n"),
      &errors));

  // And the well-formed single line passes.
  errors.clear();
  EXPECT_TRUE(
      ts_validate_file(write_file("good.jsonl", good + "\n"), &errors))
      << (errors.empty() ? "?" : errors.front());
}

TEST(Timeseries, ReconfigurationStartsFreshFiles) {
  ts_fixture fx("reconf");
  set_ts_interval_ms(60'000);
  for (int i = 0; i < 3; ++i) ts_flush();
  EXPECT_EQ(ts_samples_recorded(), 3u);
  // Changing the directory drops samplers; the next flush starts a fresh
  // file (and a fresh seq sequence) under the new location.
  const fs::path dir2 = fx.dir / "second";
  set_ts_dir(dir2.string());
  ts_flush();
  EXPECT_EQ(ts_samples_recorded(), 1u);
  EXPECT_TRUE(fs::exists(ts_rank_file(util::thread_rank())));
  std::vector<std::string> errors;
  EXPECT_TRUE(ts_validate_file(ts_rank_file(util::thread_rank()), &errors));
}

}  // namespace
}  // namespace sfg::obs
