/// Trace-layer tests: event recording from multiple threads, the
/// pid=rank / "rank N" metadata model, and well-formedness of the
/// serialized Chrome trace (every event carries name/ph/pid, timed events
/// carry ts, complete events carry dur) — the same contract
/// tools/sfg_report_check enforces on CI artifacts.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace sfg::obs {
namespace {

struct trace_fixture : ::testing::Test {
  bool saved_trace = trace_on();
  void SetUp() override {
    set_trace_enabled(true);
    trace_clear();
  }
  void TearDown() override {
    trace_clear();
    set_trace_enabled(saved_trace);
  }
};

/// All recorded events (excluding metadata), as json.
json events_json() {
  const json doc = trace_to_json();
  EXPECT_NE(doc.find("traceEvents"), nullptr);
  return *doc.find("traceEvents");
}

const json* find_event(const json& events, const std::string& name) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json* n = events.at(i).find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) {
      return &events.at(i);
    }
  }
  return nullptr;
}

using trace_test = trace_fixture;

TEST_F(trace_test, SpanEmitsCompleteEvent) {
  {
    trace_span span("unit.span", "test");
    span.set_arg("items", 42.0);
  }
  const json events = events_json();
  const json* ev = find_event(events, "unit.span");
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->find("ph")->as_string(), "X");
  EXPECT_EQ(ev->find("cat")->as_string(), "test");
  ASSERT_NE(ev->find("ts"), nullptr);
  ASSERT_NE(ev->find("dur"), nullptr);
  ASSERT_NE(ev->find("args"), nullptr);
  EXPECT_DOUBLE_EQ(ev->find("args")->find("items")->as_double(), 42.0);
}

TEST_F(trace_test, InstantAndCounterEvents) {
  trace_instant("unit.instant", "test", "wave", 3.0);
  trace_counter_event("unit.counter", 17.0);

  const json events = events_json();
  const json* inst = find_event(events, "unit.instant");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->find("ph")->as_string(), "i");
  const json* ctr = find_event(events, "unit.counter");
  ASSERT_NE(ctr, nullptr);
  EXPECT_EQ(ctr->find("ph")->as_string(), "C");
}

TEST_F(trace_test, PidTracksThreadRank) {
  // Events from a thread tagged as rank 2 must land on pid 2, with a
  // "rank 2" process_name metadata record so Perfetto labels the row.
  std::thread([] {
    util::set_thread_rank(2);
    trace_instant("unit.rank2", "test");
    util::set_thread_rank(-1);
  }).join();

  const json events = events_json();
  const json* ev = find_event(events, "unit.rank2");
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->find("pid")->as_i64(), 2);

  const json* meta = find_event(events, "process_name");
  ASSERT_NE(meta, nullptr) << "expected a process_name metadata event";
  EXPECT_EQ(meta->find("ph")->as_string(), "M");
}

TEST_F(trace_test, MultiThreadedRecordingIsWellFormed) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      util::set_thread_rank(t % 4);
      for (int i = 0; i < kPerThread; ++i) {
        trace_span span("mt.span", "test");
        trace_instant("mt.instant", "test", "i", i);
      }
      util::set_thread_rank(-1);
    });
  }
  for (auto& w : workers) w.join();

  const json events = events_json();
  // 2 events per iteration, plus metadata records.
  EXPECT_GE(events.size(), std::size_t{2 * kThreads * kPerThread});

  std::set<std::int64_t> pids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json& ev = events.at(i);
    ASSERT_NE(ev.find("name"), nullptr) << "event " << i;
    ASSERT_NE(ev.find("ph"), nullptr) << "event " << i;
    ASSERT_NE(ev.find("pid"), nullptr) << "event " << i;
    const std::string ph = ev.find("ph")->as_string();
    if (ph != "M") {
      ASSERT_NE(ev.find("ts"), nullptr) << "event " << i;
    }
    if (ph == "X") {
      ASSERT_NE(ev.find("dur"), nullptr) << "event " << i;
      pids.insert(ev.find("pid")->as_i64());
    }
  }
  EXPECT_EQ(pids.size(), 4u) << "expected one timeline per simulated rank";
}

TEST_F(trace_test, WriteChromeTraceProducesParsableFile) {
  trace_instant("unit.file", "test");
  const std::string path = ::testing::TempDir() + "trace_test_out.json";
  write_chrome_trace(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = json::parse(ss.str());
  ASSERT_TRUE(doc.has_value()) << "trace file is not valid JSON";
  ASSERT_NE(doc->find("traceEvents"), nullptr);
  EXPECT_GT(doc->find("traceEvents")->size(), 0u);
  std::remove(path.c_str());
}

TEST_F(trace_test, ClearDropsEverything) {
  trace_instant("unit.cleared", "test");
  EXPECT_GT(trace_event_count(), 0u);
  trace_clear();
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(trace_test, TimeIsMonotonic) {
  const auto a = trace_now_us();
  const auto b = trace_now_us();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace sfg::obs
