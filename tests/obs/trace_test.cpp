/// Trace-layer tests: event recording from multiple threads, the
/// pid=rank / "rank N" metadata model, and well-formedness of the
/// serialized Chrome trace (every event carries name/ph/pid, timed events
/// carry ts, complete events carry dur) — the same contract
/// tools/sfg_report_check enforces on CI artifacts.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace_context.hpp"
#include "util/log.hpp"

namespace sfg::obs {
namespace {

struct trace_fixture : ::testing::Test {
  bool saved_trace = trace_on();
  void SetUp() override {
    set_trace_enabled(true);
    trace_clear();
  }
  void TearDown() override {
    trace_clear();
    set_trace_enabled(saved_trace);
  }
};

/// All recorded events (excluding metadata), as json.
json events_json() {
  const json doc = trace_to_json();
  EXPECT_NE(doc.find("traceEvents"), nullptr);
  return *doc.find("traceEvents");
}

const json* find_event(const json& events, const std::string& name) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json* n = events.at(i).find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) {
      return &events.at(i);
    }
  }
  return nullptr;
}

using trace_test = trace_fixture;

TEST_F(trace_test, SpanEmitsCompleteEvent) {
  {
    trace_span span("unit.span", "test");
    span.set_arg("items", 42.0);
  }
  const json events = events_json();
  const json* ev = find_event(events, "unit.span");
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->find("ph")->as_string(), "X");
  EXPECT_EQ(ev->find("cat")->as_string(), "test");
  ASSERT_NE(ev->find("ts"), nullptr);
  ASSERT_NE(ev->find("dur"), nullptr);
  ASSERT_NE(ev->find("args"), nullptr);
  EXPECT_DOUBLE_EQ(ev->find("args")->find("items")->as_double(), 42.0);
}

TEST_F(trace_test, InstantAndCounterEvents) {
  trace_instant("unit.instant", "test", "wave", 3.0);
  trace_counter_event("unit.counter", 17.0);

  const json events = events_json();
  const json* inst = find_event(events, "unit.instant");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->find("ph")->as_string(), "i");
  const json* ctr = find_event(events, "unit.counter");
  ASSERT_NE(ctr, nullptr);
  EXPECT_EQ(ctr->find("ph")->as_string(), "C");
}

TEST_F(trace_test, PidTracksThreadRank) {
  // Events from a thread tagged as rank 2 must land on pid 2, with a
  // "rank 2" process_name metadata record so Perfetto labels the row.
  std::thread([] {
    util::set_thread_rank(2);
    trace_instant("unit.rank2", "test");
    util::set_thread_rank(-1);
  }).join();

  const json events = events_json();
  const json* ev = find_event(events, "unit.rank2");
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->find("pid")->as_i64(), 2);

  const json* meta = find_event(events, "process_name");
  ASSERT_NE(meta, nullptr) << "expected a process_name metadata event";
  EXPECT_EQ(meta->find("ph")->as_string(), "M");
}

TEST_F(trace_test, MultiThreadedRecordingIsWellFormed) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      util::set_thread_rank(t % 4);
      for (int i = 0; i < kPerThread; ++i) {
        trace_span span("mt.span", "test");
        trace_instant("mt.instant", "test", "i", i);
      }
      util::set_thread_rank(-1);
    });
  }
  for (auto& w : workers) w.join();

  const json events = events_json();
  // 2 events per iteration, plus metadata records.
  EXPECT_GE(events.size(), std::size_t{2 * kThreads * kPerThread});

  std::set<std::int64_t> pids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json& ev = events.at(i);
    ASSERT_NE(ev.find("name"), nullptr) << "event " << i;
    ASSERT_NE(ev.find("ph"), nullptr) << "event " << i;
    ASSERT_NE(ev.find("pid"), nullptr) << "event " << i;
    const std::string ph = ev.find("ph")->as_string();
    if (ph != "M") {
      ASSERT_NE(ev.find("ts"), nullptr) << "event " << i;
    }
    if (ph == "X") {
      ASSERT_NE(ev.find("dur"), nullptr) << "event " << i;
      pids.insert(ev.find("pid")->as_i64());
    }
  }
  EXPECT_EQ(pids.size(), 4u) << "expected one timeline per simulated rank";
}

TEST_F(trace_test, WriteChromeTraceProducesParsableFile) {
  trace_instant("unit.file", "test");
  const std::string path = ::testing::TempDir() + "trace_test_out.json";
  write_chrome_trace(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = json::parse(ss.str());
  ASSERT_TRUE(doc.has_value()) << "trace file is not valid JSON";
  ASSERT_NE(doc->find("traceEvents"), nullptr);
  EXPECT_GT(doc->find("traceEvents")->size(), 0u);
  std::remove(path.c_str());
}

TEST_F(trace_test, ClearDropsEverything) {
  trace_instant("unit.cleared", "test");
  EXPECT_GT(trace_event_count(), 0u);
  trace_clear();
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(trace_test, TimeIsMonotonic) {
  const auto a = trace_now_us();
  const auto b = trace_now_us();
  EXPECT_LE(a, b);
}

// ---------------------------------------------------------------------------
// Flow events ('s'/'t'/'f') — the causal-chain vocabulary.
// ---------------------------------------------------------------------------

TEST_F(trace_test, FlowEventsCarryPhaseAndId) {
  constexpr std::uint64_t kId = 0x8000'1234'5678'9abcULL;
  trace_flow_begin("flow.start", kId);
  trace_flow_step("flow.mid", kId);
  trace_flow_end("flow.finish", kId);

  const json events = events_json();
  const json* s = find_event(events, "flow.start");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->find("ph")->as_string(), "s");
  EXPECT_EQ(s->find("cat")->as_string(), "visitor_flow");
  ASSERT_NE(s->find("id"), nullptr);
  EXPECT_EQ(s->find("id")->as_u64(), kId);
  EXPECT_EQ(s->find("bp"), nullptr);

  const json* t = find_event(events, "flow.mid");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->find("ph")->as_string(), "t");
  EXPECT_EQ(t->find("id")->as_u64(), kId);

  const json* f = find_event(events, "flow.finish");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->find("ph")->as_string(), "f");
  EXPECT_EQ(f->find("id")->as_u64(), kId);
  // Binding point "enclosing": the arrow lands on the event that was
  // active when the flow ended, which is how Perfetto draws chains.
  ASSERT_NE(f->find("bp"), nullptr);
  EXPECT_EQ(f->find("bp")->as_string(), "e");
}

TEST_F(trace_test, FlowEventsRespectEnableGate) {
  set_trace_enabled(false);
  trace_flow_begin("flow.gated", 7);
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(trace_test, FlowStepCarriesArg) {
  trace_flow_step("flow.arg", 9, "visitor_flow", "hop", 3.0);
  const json events = events_json();
  const json* ev = find_event(events, "flow.arg");
  ASSERT_NE(ev, nullptr);
  ASSERT_NE(ev->find("args"), nullptr);
  EXPECT_DOUBLE_EQ(ev->find("args")->find("hop")->as_double(), 3.0);
}

// ---------------------------------------------------------------------------
// trace_ctx packing — origin rank, vertex bits, hop count, sampled bit.
// ---------------------------------------------------------------------------

TEST(trace_ctx_test, PackAndUnpackRoundTrips) {
  const trace_ctx c = make_trace_ctx(1234, 0xab'cdef'0123ULL, 5);
  EXPECT_TRUE(ctx_sampled(c));
  EXPECT_EQ(ctx_origin(c), 1234);
  EXPECT_EQ(ctx_vertex(c), 0xab'cdef'0123ULL);
  EXPECT_EQ(ctx_hops(c), 5u);
}

TEST(trace_ctx_test, ZeroMeansUnsampled) {
  EXPECT_FALSE(ctx_sampled(trace_ctx{0}));
}

TEST(trace_ctx_test, VertexBitsTruncateTo40) {
  // Only the low 40 bits of the vertex survive; the id is a sampling
  // correlator, not a lossless vertex encoding.
  const trace_ctx c = make_trace_ctx(0, ~0ULL, 0);
  EXPECT_EQ(ctx_vertex(c), (std::uint64_t{1} << 40) - 1);
}

TEST(trace_ctx_test, HopCountSaturatesAt127) {
  trace_ctx c = make_trace_ctx(3, 42, 126);
  c = ctx_bump_hop(c);
  EXPECT_EQ(ctx_hops(c), 127u);
  c = ctx_bump_hop(c);  // saturates instead of wrapping into origin bits
  EXPECT_EQ(ctx_hops(c), 127u);
  EXPECT_EQ(ctx_origin(c), 3);
  EXPECT_EQ(ctx_vertex(c), 42u);
  EXPECT_TRUE(ctx_sampled(c));
}

TEST(trace_ctx_test, BumpHopOnUnsampledStaysZero) {
  EXPECT_EQ(ctx_bump_hop(trace_ctx{0}), trace_ctx{0});
}

TEST(trace_ctx_test, FlowIdIsHopInvariant) {
  // Every hop of one visitor chain must map to the same flow id, or the
  // Chrome-trace arrows would not connect across ranks.
  const trace_ctx h0 = make_trace_ctx(17, 99, 0);
  const trace_ctx h3 = make_trace_ctx(17, 99, 3);
  EXPECT_NE(h0, h3);
  EXPECT_EQ(ctx_flow_id(h0), ctx_flow_id(h3));
  // Distinct origins or vertices are distinct flows.
  EXPECT_NE(ctx_flow_id(make_trace_ctx(18, 99, 0)), ctx_flow_id(h0));
  EXPECT_NE(ctx_flow_id(make_trace_ctx(17, 98, 0)), ctx_flow_id(h0));
}

// ---------------------------------------------------------------------------
// Sampling gate — 1-in-N per thread, off when tracing is off or rate is 0.
// ---------------------------------------------------------------------------

struct sampling_fixture : trace_fixture {
  std::uint32_t saved_rate = trace_sample_rate();
  void TearDown() override {
    set_trace_sample_rate(saved_rate);
    trace_fixture::TearDown();
  }
};

using sampling_test = sampling_fixture;

TEST_F(sampling_test, RateZeroNeverSamples) {
  set_trace_sample_rate(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_trace_ctx(0, static_cast<std::uint64_t>(i)), 0u);
  }
}

TEST_F(sampling_test, TracingOffNeverSamples) {
  set_trace_sample_rate(1);
  set_trace_enabled(false);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_trace_ctx(0, static_cast<std::uint64_t>(i)), 0u);
  }
}

TEST_F(sampling_test, RateOneSamplesEverything) {
  set_trace_sample_rate(1);
  // Run on a fresh thread so this test does not inherit another test's
  // thread-local countdown position.
  int sampled = 0;
  std::thread([&] {
    for (int i = 0; i < 50; ++i) {
      if (sample_trace_ctx(2, static_cast<std::uint64_t>(i)) != 0) ++sampled;
    }
  }).join();
  EXPECT_EQ(sampled, 50);
}

TEST_F(sampling_test, RateNSamplesExactlyOneInN) {
  constexpr std::uint32_t kRate = 8;
  constexpr int kCalls = 80;
  set_trace_sample_rate(kRate);
  int sampled = 0;
  trace_ctx first = 0;
  std::thread([&] {
    for (int i = 0; i < kCalls; ++i) {
      const trace_ctx c = sample_trace_ctx(3, static_cast<std::uint64_t>(i));
      if (c != 0) {
        if (first == 0) first = c;
        ++sampled;
      }
    }
  }).join();
  EXPECT_EQ(sampled, kCalls / static_cast<int>(kRate));
  ASSERT_NE(first, 0u);
  EXPECT_TRUE(ctx_sampled(first));
  EXPECT_EQ(ctx_origin(first), 3);
  EXPECT_EQ(ctx_hops(first), 0u);
}

}  // namespace
}  // namespace sfg::obs
