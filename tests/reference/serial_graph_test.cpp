#include "reference/serial_graph.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/builder.hpp"  // edge_weight_of

namespace sfg::reference {
namespace {

constexpr auto kInf = std::numeric_limits<std::uint64_t>::max();

serial_graph triangle_with_tail() {
  // 0-1-2 triangle, tail 2-3-4.
  return serial_graph::from_edges({{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}});
}

TEST(SerialGraph, BuildCleansInput) {
  const auto g =
      serial_graph::from_edges({{0, 1}, {0, 1}, {1, 0}, {2, 2}, {1, 2}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);  // {0,1} and {1,2}, both directions
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(SerialBfs, LevelsOnKnownGraph) {
  const auto g = triangle_with_tail();
  const auto levels = serial_bfs(g, 0);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[3], 2u);
  EXPECT_EQ(levels[4], 3u);
}

TEST(SerialBfs, UnreachableIsInf) {
  const auto g = serial_graph::from_edges({{0, 1}, {3, 4}});
  const auto levels = serial_bfs(g, 0);
  EXPECT_EQ(levels[3], kInf);
  EXPECT_EQ(levels[4], kInf);
}

TEST(SerialBfsDepth, MatchesEccentricity) {
  const auto g = triangle_with_tail();
  EXPECT_EQ(serial_bfs_depth(g, 0), 3u);
  EXPECT_EQ(serial_bfs_depth(g, 2), 2u);
}

TEST(SerialKcore, TriangleWithTail) {
  const auto g = triangle_with_tail();
  const auto core2 = serial_kcore(g, 2);
  EXPECT_TRUE(core2[0]);
  EXPECT_TRUE(core2[1]);
  EXPECT_TRUE(core2[2]);
  EXPECT_FALSE(core2[3]);
  EXPECT_FALSE(core2[4]);
}

TEST(SerialTriangles, CountsKnownGraphs) {
  EXPECT_EQ(serial_triangle_count(triangle_with_tail()), 1u);
  const auto k4 = serial_graph::from_edges(
      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(serial_triangle_count(k4), 4u);
}

TEST(SerialComponents, LabelsAreComponentMinima) {
  const auto g = serial_graph::from_edges({{0, 1}, {1, 2}, {5, 6}});
  const auto labels = serial_components(g);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[5], 5u);
  EXPECT_EQ(labels[6], 5u);
}

TEST(SerialSssp, MatchesHandComputation) {
  // Weights are deterministic; check basic invariants instead of values:
  // dist[source] = 0, triangle inequality on edges.
  const auto g = triangle_with_tail();
  const auto dist = serial_sssp(g, 0, 7);
  EXPECT_EQ(dist[0], 0u);
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v) {
    for (const auto n : g.neighbors(v)) {
      if (dist[v] == kInf) continue;
      EXPECT_LE(dist[n], dist[v] + graph::edge_weight_of(v, n, 7));
    }
  }
}

}  // namespace
}  // namespace sfg::reference
