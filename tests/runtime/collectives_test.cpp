#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "runtime/comm.hpp"
#include "runtime/runtime.hpp"

namespace sfg::runtime {
namespace {

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, AllReduceSum) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    const int total = c.all_reduce(c.rank() + 1, std::plus<>());
    EXPECT_EQ(total, p * (p + 1) / 2);
  });
}

TEST_P(CollectivesP, AllReduceMax) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    const auto max = c.all_reduce(static_cast<std::uint64_t>(c.rank()),
                                  [](std::uint64_t a, std::uint64_t b) {
                                    return a > b ? a : b;
                                  });
    EXPECT_EQ(max, static_cast<std::uint64_t>(p - 1));
  });
}

TEST_P(CollectivesP, AllGather) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    const auto vals = c.all_gather(c.rank() * 2);
    ASSERT_EQ(vals.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) EXPECT_EQ(vals[static_cast<std::size_t>(r)], r * 2);
  });
}

TEST_P(CollectivesP, AllGatherV) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    // Rank r contributes r elements: [r, r, ..., r].
    std::vector<int> mine(static_cast<std::size_t>(c.rank()), c.rank());
    std::vector<std::size_t> counts;
    const auto all = c.all_gatherv(std::span<const int>(mine), &counts);
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
    std::size_t expected_total = 0;
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(counts[static_cast<std::size_t>(r)], static_cast<std::size_t>(r));
      expected_total += static_cast<std::size_t>(r);
    }
    ASSERT_EQ(all.size(), expected_total);
    std::size_t i = 0;
    for (int r = 0; r < p; ++r) {
      for (int k = 0; k < r; ++k) EXPECT_EQ(all[i++], r);
    }
  });
}

TEST_P(CollectivesP, AllToAllV) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    // Rank s sends {s * 100 + d} repeated (d + 1) times to rank d.
    std::vector<std::vector<int>> outgoing(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      outgoing[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(d + 1), c.rank() * 100 + d);
    }
    const auto incoming = c.all_to_allv(outgoing);
    ASSERT_EQ(incoming.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      const auto& from_s = incoming[static_cast<std::size_t>(s)];
      ASSERT_EQ(from_s.size(), static_cast<std::size_t>(c.rank() + 1));
      for (const int v : from_s) EXPECT_EQ(v, s * 100 + c.rank());
    }
  });
}

TEST_P(CollectivesP, ExscanSum) {
  const int p = GetParam();
  launch(p, [](comm& c) {
    // Everyone contributes (rank + 1); prefix over lower ranks.
    const int pre = c.exscan_sum(c.rank() + 1);
    EXPECT_EQ(pre, c.rank() * (c.rank() + 1) / 2);
  });
}

TEST_P(CollectivesP, Broadcast) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    for (int root = 0; root < p; ++root) {
      const std::uint64_t v =
          c.rank() == root ? 0xdead0000ULL + static_cast<std::uint64_t>(root) : 0;
      const auto out = c.broadcast(v, root);
      EXPECT_EQ(out, 0xdead0000ULL + static_cast<std::uint64_t>(root));
    }
  });
}

TEST_P(CollectivesP, BackToBackCollectivesDoNotInterfere) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    for (int iter = 0; iter < 50; ++iter) {
      const int sum = c.all_reduce(1, std::plus<>());
      EXPECT_EQ(sum, p);
      const auto g = c.all_gather(iter);
      for (const int v : g) EXPECT_EQ(v, iter);
    }
  });
}

TEST_P(CollectivesP, CollectivesCoexistWithP2P) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    // Interleave: send p2p, collective, then drain.
    const int dest = (c.rank() + 1) % p;
    c.send_value(dest, 1, c.rank());
    const int sum = c.all_reduce(c.rank(), std::plus<>());
    EXPECT_EQ(sum, p * (p - 1) / 2);
    message m;
    while (!c.try_recv(m)) {
    }
    EXPECT_EQ(m.as<int>(), (c.rank() + p - 1) % p);
    c.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

}  // namespace
}  // namespace sfg::runtime
