#include "runtime/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "runtime/runtime.hpp"

namespace sfg::runtime {
namespace {

constexpr int kTag = 3;

TEST(Comm, WorldSizeAndRanks) {
  launch(4, [](comm& c) {
    EXPECT_EQ(c.size(), 4);
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 4);
  });
}

TEST(Comm, SingleRankWorldWorks) {
  launch(1, [](comm& c) {
    EXPECT_EQ(c.size(), 1);
    c.send_value(0, kTag, 42);
    message m;
    ASSERT_TRUE(c.try_recv(m));
    EXPECT_EQ(m.as<int>(), 42);
    EXPECT_EQ(m.source, 0);
  });
}

TEST(Comm, PointToPointDelivers) {
  launch(2, [](comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, kTag, std::uint64_t{12345});
    } else {
      message m;
      while (!c.try_recv(m)) {
      }
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, kTag);
      EXPECT_EQ(m.as<std::uint64_t>(), 12345u);
    }
    c.barrier();
  });
}

TEST(Comm, FifoPerSenderPair) {
  constexpr int kCount = 500;
  launch(2, [](comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < kCount; ++i) c.send_value(1, kTag, i);
    } else {
      int expected = 0;
      message m;
      while (expected < kCount) {
        if (c.try_recv(m)) {
          EXPECT_EQ(m.as<int>(), expected);
          ++expected;
        }
      }
    }
    c.barrier();
  });
}

TEST(Comm, AllToAllMessagesArrive) {
  constexpr int kP = 8;
  launch(kP, [](comm& c) {
    // Everyone sends its rank to everyone (including itself).
    for (int d = 0; d < c.size(); ++d) c.send_value(d, kTag, c.rank());
    std::vector<bool> got(static_cast<std::size_t>(c.size()), false);
    int received = 0;
    message m;
    while (received < c.size()) {
      if (c.try_recv(m)) {
        const int src = m.as<int>();
        EXPECT_EQ(src, m.source);
        EXPECT_FALSE(got[static_cast<std::size_t>(src)]);
        got[static_cast<std::size_t>(src)] = true;
        ++received;
      }
    }
    c.barrier();
  });
}

TEST(Comm, TrafficStatsCount) {
  launch(2, [](comm& c) {
    c.barrier();
    if (c.rank() == 0) {
      c.send_value(1, kTag, std::uint64_t{1});
      c.send_value(1, kTag, std::uint64_t{2});
      EXPECT_EQ(c.stats().messages_sent, 2u);
      EXPECT_EQ(c.stats().bytes_sent, 16u);
      EXPECT_EQ(c.sent_per_dest()[1], 2u);
      EXPECT_EQ(c.sent_per_dest()[0], 0u);
    }
    c.barrier();
    if (c.rank() == 1) {
      message m;
      while (c.stats().messages_received < 2) {
        c.try_recv(m);
      }
      EXPECT_EQ(c.stats().bytes_received, 16u);
    }
    c.barrier();
  });
}

TEST(Comm, ResetStatsZeroes) {
  launch(2, [](comm& c) {
    c.send_value((c.rank() + 1) % 2, kTag, 1);
    c.reset_stats();
    EXPECT_EQ(c.stats().messages_sent, 0u);
    EXPECT_EQ(c.sent_per_dest()[0], 0u);
    c.barrier();
  });
}

TEST(Comm, InboxEmptyReflectsState) {
  launch(2, [](comm& c) {
    if (c.rank() == 1) {
      EXPECT_TRUE(c.inbox_empty());
    }
    c.barrier();
    if (c.rank() == 0) c.send_value(1, kTag, 9);
    c.barrier();
    if (c.rank() == 1) {
      EXPECT_FALSE(c.inbox_empty());
      message m;
      EXPECT_TRUE(c.try_recv(m));
      EXPECT_TRUE(c.inbox_empty());
    }
    c.barrier();
  });
}

TEST(Runtime, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      launch(4,
             [](comm& c) {
               if (c.rank() == 2) throw std::logic_error("rank 2 failed");
               // Other ranks block in a collective; the poison unblocks
               // them instead of deadlocking the test.
               c.barrier();
             }),
      std::logic_error);
}

TEST(Runtime, LaunchGatherReturnsPerRankValues) {
  const auto vals = launch_gather<int>(5, [](comm& c) { return c.rank() * 10; });
  ASSERT_EQ(vals.size(), 5u);
  for (int r = 0; r < 5; ++r) EXPECT_EQ(vals[static_cast<std::size_t>(r)], r * 10);
}

TEST(Runtime, ManyRanksLaunch) {
  std::atomic<int> count{0};
  launch(32, [&](comm& c) {
    count.fetch_add(1);
    c.barrier();
  });
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace sfg::runtime
