#include "runtime/termination.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/runtime.hpp"

namespace sfg::runtime {
namespace {

constexpr int kCtrlTag = 100;
constexpr int kDataTag = 1;

/// Drive a detector to completion over a rank's poll loop, processing both
/// control and (counted) data messages.  `work` is invoked on each data
/// message and may send more data; returns the final (sent, recv) counts.
template <typename Detector, typename WorkFn>
std::pair<std::uint64_t, std::uint64_t> drive(comm& c, Detector& det,
                                              std::uint64_t initial_sent,
                                              WorkFn&& work) {
  std::uint64_t sent = initial_sent;
  std::uint64_t recv = 0;
  message m;
  while (true) {
    bool any = false;
    while (c.try_recv(m)) {
      any = true;
      if (m.tag == kCtrlTag) {
        if constexpr (std::is_same_v<Detector, tree_termination> ||
                      std::is_same_v<Detector, safra_termination>) {
          det.on_message(m);
        }
        // oracle has no messages; control tag unused.
      } else {
        ++recv;
        sent += work(m);
      }
    }
    const bool idle = !any && c.inbox_empty();
    if (det.poll(sent, recv, idle)) break;
  }
  return {sent, recv};
}

class TerminationP : public ::testing::TestWithParam<int> {};

TEST_P(TerminationP, TreeDetectsWithNoWork) {
  launch(GetParam(), [](comm& c) {
    tree_termination det(c, kCtrlTag);
    const auto [sent, recv] =
        drive(c, det, 0, [](const message&) { return 0; });
    EXPECT_EQ(sent, 0u);
    EXPECT_EQ(recv, 0u);
    EXPECT_TRUE(det.finished());
  });
}

TEST_P(TerminationP, TreeDetectsAfterRing) {
  // Each rank sends one message around a ring; each receipt spawns no
  // further work.  All sent == all received at termination.
  const int p = GetParam();
  launch(p, [p](comm& c) {
    tree_termination det(c, kCtrlTag);
    c.send_value((c.rank() + 1) % p, kDataTag, 1);
    const auto [sent, recv] =
        drive(c, det, 1, [](const message&) { return 0; });
    EXPECT_EQ(sent, 1u);
    EXPECT_EQ(recv, 1u);
  });
}

TEST_P(TerminationP, TreeDetectsWithCascadingWork) {
  // Receipt of a message with ttl > 0 spawns a new message with ttl - 1 to
  // a rotating destination: a shrinking cascade that must fully drain
  // before the detector may fire.
  const int p = GetParam();
  launch(p, [p](comm& c) {
    tree_termination det(c, kCtrlTag);
    std::uint64_t initial = 0;
    if (c.rank() == 0) {
      c.send_value(p - 1, kDataTag, 20);  // ttl = 20
      initial = 1;
    }
    std::uint64_t processed_ttl_sum = 0;
    const auto [sent, recv] = drive(c, det, initial, [&](const message& m) {
      const int ttl = m.as<int>();
      processed_ttl_sum += static_cast<std::uint64_t>(ttl);
      if (ttl > 0) {
        c.send_value((c.rank() + 3) % p, kDataTag, ttl - 1);
        return 1;
      }
      return 0;
    });
    // Global invariant: total sent == total recv == 21 messages.
    const auto total_sent = c.all_reduce(sent, std::plus<>());
    const auto total_recv = c.all_reduce(recv, std::plus<>());
    EXPECT_EQ(total_sent, 21u);
    EXPECT_EQ(total_recv, 21u);
  });
}

TEST_P(TerminationP, SafraDetectsWithNoWork) {
  launch(GetParam(), [](comm& c) {
    safra_termination det(c, kCtrlTag);
    const auto [sent, recv] =
        drive(c, det, 0, [](const message&) { return 0; });
    EXPECT_EQ(sent, 0u);
    EXPECT_EQ(recv, 0u);
    EXPECT_TRUE(det.finished());
  });
}

TEST_P(TerminationP, SafraDetectsAfterRing) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    safra_termination det(c, kCtrlTag);
    c.send_value((c.rank() + 1) % p, kDataTag, 1);
    const auto [sent, recv] =
        drive(c, det, 1, [](const message&) { return 0; });
    EXPECT_EQ(sent, 1u);
    EXPECT_EQ(recv, 1u);
  });
}

TEST_P(TerminationP, SafraDetectsWithCascadingWork) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    safra_termination det(c, kCtrlTag);
    std::uint64_t initial = 0;
    if (c.rank() == 0) {
      c.send_value(p - 1, kDataTag, 20);
      initial = 1;
    }
    const auto [sent, recv] = drive(c, det, initial, [&](const message& m) {
      const int ttl = m.as<int>();
      if (ttl > 0) {
        c.send_value((c.rank() + 3) % p, kDataTag, ttl - 1);
        return 1;
      }
      return 0;
    });
    const auto total_sent = c.all_reduce(sent, std::plus<>());
    const auto total_recv = c.all_reduce(recv, std::plus<>());
    EXPECT_EQ(total_sent, 21u);
    EXPECT_EQ(total_recv, 21u);
  });
}

TEST_P(TerminationP, SafraMatchesTreeTotals) {
  // Identical cascade under both message-based detectors: both must
  // drain exactly the same global message count before firing.
  const int p = GetParam();
  std::uint64_t totals[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    launch(p, [&, mode](comm& c) {
      std::uint64_t initial = 0;
      if (c.rank() == 0) {
        c.send_value(p / 2, kDataTag, 9);
        initial = 1;
      }
      auto work = [&](const message& m) {
        const int ttl = m.as<int>();
        if (ttl > 0) {
          c.send_value((c.rank() + 1) % p, kDataTag, ttl - 1);
          return 1;
        }
        return 0;
      };
      std::uint64_t recv_total = 0;
      if (mode == 0) {
        tree_termination det(c, kCtrlTag);
        recv_total = drive(c, det, initial, work).second;
      } else {
        safra_termination det(c, kCtrlTag);
        recv_total = drive(c, det, initial, work).second;
      }
      const auto total = c.all_reduce(recv_total, std::plus<>());
      if (c.rank() == 0) totals[mode] = total;
      c.barrier();
    });
  }
  EXPECT_EQ(totals[0], 10u);
  EXPECT_EQ(totals[1], 10u);
}

TEST_P(TerminationP, OracleDetectsWithNoWork) {
  launch(GetParam(), [](comm& c) {
    shared_term_oracle det(c);
    const auto [sent, recv] =
        drive(c, det, 0, [](const message&) { return 0; });
    EXPECT_EQ(sent, 0u);
    EXPECT_EQ(recv, 0u);
  });
}

TEST_P(TerminationP, OracleMatchesTreeOnCascade) {
  // Run the same cascade twice, once under each detector; both must drain
  // exactly the same number of messages.
  const int p = GetParam();
  for (int mode = 0; mode < 2; ++mode) {
    std::uint64_t grand_total = 0;
    launch(p, [p, mode, &grand_total](comm& c) {
      std::uint64_t initial = 0;
      if (c.rank() == 0) {
        c.send_value(p / 2, kDataTag, 12);
        initial = 1;
      }
      auto work = [&](const message& m) {
        const int ttl = m.as<int>();
        if (ttl > 0) {
          c.send_value((c.rank() + 1) % p, kDataTag, ttl - 1);
          return 1;
        }
        return 0;
      };
      std::uint64_t recv_total = 0;
      if (mode == 0) {
        tree_termination det(c, kCtrlTag);
        recv_total = drive(c, det, initial, work).second;
      } else {
        shared_term_oracle det(c);
        recv_total = drive(c, det, initial, work).second;
      }
      const auto total = c.all_reduce(recv_total, std::plus<>());
      if (c.rank() == 0) grand_total = total;
      c.barrier();
    });
    EXPECT_EQ(grand_total, 13u) << "mode=" << mode;
  }
}

TEST_P(TerminationP, TreeRunsMultipleWaves) {
  // With real work in flight, the detector cannot finish in a single wave:
  // the four-counter rule requires two *stable* waves.
  const int p = GetParam();
  launch(p, [p](comm& c) {
    tree_termination det(c, kCtrlTag);
    std::uint64_t initial = 0;
    if (c.rank() == 0) {
      c.send_value(p - 1, kDataTag, 5);
      initial = 1;
    }
    drive(c, det, initial, [&](const message& m) {
      const int ttl = m.as<int>();
      if (ttl > 0) {
        c.send_value((c.rank() + 1) % p, kDataTag, ttl - 1);
        return 1;
      }
      return 0;
    });
    if (c.rank() == 0) {
      EXPECT_GE(det.waves_completed(), 2u);
    }
    c.barrier();
  });
}

/// Like drive(), but hostile: every control message is held back for one
/// poll round and then delivered to the detector TWICE — the at-least-once,
/// delayed delivery a faulty transport produces.  A detector whose control
/// protocol is not idempotent per sequence number either deadlocks (wave
/// state reset mid-collection) or terminates early (double-counted child
/// reports / twin Safra tokens).
template <typename Detector, typename WorkFn>
std::pair<std::uint64_t, std::uint64_t> drive_hostile(comm& c, Detector& det,
                                                      std::uint64_t initial_sent,
                                                      WorkFn&& work) {
  std::uint64_t sent = initial_sent;
  std::uint64_t recv = 0;
  std::vector<message> held;
  message m;
  while (true) {
    bool any = false;
    for (auto& h : held) {
      det.on_message(h);
      det.on_message(h);  // replay
    }
    const bool had_held = !held.empty();
    held.clear();
    while (c.try_recv(m)) {
      any = true;
      if (m.tag == kCtrlTag) {
        held.push_back(m);  // delay to the next round
      } else {
        ++recv;
        sent += work(m);
      }
    }
    const bool idle = !any && !had_held && held.empty() && c.inbox_empty();
    if (det.poll(sent, recv, idle)) break;
  }
  return {sent, recv};
}

TEST_P(TerminationP, TreeToleratesDuplicatedDelayedControl) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    tree_termination det(c, kCtrlTag);
    std::uint64_t initial = 0;
    if (c.rank() == 0) {
      c.send_value(p - 1, kDataTag, 20);
      initial = 1;
    }
    const auto [sent, recv] =
        drive_hostile(c, det, initial, [&](const message& m) {
          const int ttl = m.as<int>();
          if (ttl > 0) {
            c.send_value((c.rank() + 3) % p, kDataTag, ttl - 1);
            return 1;
          }
          return 0;
        });
    // Same global invariant as the clean-transport cascade: the replayed
    // wave_req / wave_report / done messages must all be absorbed.
    const auto total_sent = c.all_reduce(sent, std::plus<>());
    const auto total_recv = c.all_reduce(recv, std::plus<>());
    EXPECT_EQ(total_sent, 21u);
    EXPECT_EQ(total_recv, 21u);
    EXPECT_TRUE(det.finished());
  });
}

TEST_P(TerminationP, SafraToleratesDuplicatedDelayedControl) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    safra_termination det(c, kCtrlTag);
    std::uint64_t initial = 0;
    if (c.rank() == 0) {
      c.send_value(p - 1, kDataTag, 20);
      initial = 1;
    }
    const auto [sent, recv] =
        drive_hostile(c, det, initial, [&](const message& m) {
          const int ttl = m.as<int>();
          if (ttl > 0) {
            c.send_value((c.rank() + 3) % p, kDataTag, ttl - 1);
            return 1;
          }
          return 0;
        });
    // A replayed token would put two tokens in circulation and corrupt
    // the global deficit; the round-number dedup must drop it.
    const auto total_sent = c.all_reduce(sent, std::plus<>());
    const auto total_recv = c.all_reduce(recv, std::plus<>());
    EXPECT_EQ(total_sent, 21u);
    EXPECT_EQ(total_recv, 21u);
    EXPECT_TRUE(det.finished());
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, TerminationP,
                         ::testing::Values(1, 2, 3, 4, 8, 13, 16));

}  // namespace
}  // namespace sfg::runtime
