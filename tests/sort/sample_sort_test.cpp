#include "sort/sample_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "gen/edge.hpp"
#include "gen/generators.hpp"
#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace sfg::sort {
namespace {

using gen::by_src_dst;
using gen::edge64;
using runtime::comm;
using runtime::launch;

/// Gather all ranks' vectors on every rank (test helper).
template <typename T>
std::vector<T> gather_all(comm& c, const std::vector<T>& local) {
  return c.all_gatherv(std::span<const T>(local), nullptr);
}

std::uint64_t checksum(const std::vector<edge64>& edges) {
  std::uint64_t h = 0;
  for (const auto& e : edges) {
    h += util::splitmix64(e.src * 1315423911ULL + e.dst);
  }
  return h;
}

class SampleSortP : public ::testing::TestWithParam<int> {};

TEST_P(SampleSortP, SortsRandomData) {
  const int p = GetParam();
  launch(p, [](comm& c) {
    auto rng = util::make_stream(1, static_cast<std::uint64_t>(c.rank()));
    std::vector<std::uint64_t> local(500 + 97 * static_cast<std::size_t>(c.rank()));
    for (auto& v : local) v = rng();
    const auto input_all = gather_all(c, local);

    auto sorted = sample_sort(c, local, std::less<>());
    // Locally sorted.
    EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
    // Globally sorted and a permutation of the input.
    auto all = gather_all(c, sorted);
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
    auto expected = input_all;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(all, expected);
  });
}

TEST_P(SampleSortP, SortEvenIsExactlyBalanced) {
  const int p = GetParam();
  launch(p, [p](comm& c) {
    auto rng = util::make_stream(2, static_cast<std::uint64_t>(c.rank()));
    // Deliberately imbalanced input: rank r starts with r*200 elements.
    std::vector<std::uint64_t> local(static_cast<std::size_t>(c.rank()) * 200);
    for (auto& v : local) v = rng();
    const std::uint64_t total =
        c.all_reduce(static_cast<std::uint64_t>(local.size()), std::plus<>());

    auto sorted = sort_even(c, local, std::less<>());
    const auto base = total / static_cast<std::uint64_t>(p);
    EXPECT_GE(sorted.size(), base);
    EXPECT_LE(sorted.size(), base + 1);
    auto all = gather_all(c, sorted);
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
    EXPECT_EQ(all.size(), total);
  });
}

TEST_P(SampleSortP, HubHeavyEdgesStayBalanced) {
  // Scale-free stress: one "hub" source owns 60% of all edges.  Sorting
  // by (src, dst) must still split its adjacency list across ranks and
  // keep edge counts exactly even (paper §III-A1).
  const int p = GetParam();
  launch(p, [p](comm& c) {
    auto rng = util::make_stream(3, static_cast<std::uint64_t>(c.rank()));
    std::vector<edge64> local;
    constexpr std::uint64_t kHub = 5;
    for (int i = 0; i < 1000; ++i) {
      if (rng.uniform_real() < 0.6) {
        local.push_back({kHub, rng.uniform_below(10000)});
      } else {
        local.push_back({rng.uniform_below(1000), rng.uniform_below(10000)});
      }
    }
    const auto before = c.all_reduce(checksum(local), std::plus<>());
    auto sorted = sort_even(c, local, by_src_dst{});
    const auto total = c.all_reduce(
        static_cast<std::uint64_t>(sorted.size()), std::plus<>());
    EXPECT_EQ(total, static_cast<std::uint64_t>(p) * 1000u);
    const auto base = total / static_cast<std::uint64_t>(p);
    EXPECT_GE(sorted.size(), base);
    EXPECT_LE(sorted.size(), base + 1);
    // Multiset preserved.
    const auto after = c.all_reduce(checksum(sorted), std::plus<>());
    EXPECT_EQ(before, after);
    // Globally sorted by (src, dst).
    auto all = gather_all(c, sorted);
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end(), by_src_dst{}));
  });
}

TEST_P(SampleSortP, AlreadySortedInput) {
  const int p = GetParam();
  launch(p, [](comm& c) {
    // Rank r holds [r*100, r*100+100): globally sorted already.
    std::vector<std::uint64_t> local(100);
    std::iota(local.begin(), local.end(),
              static_cast<std::uint64_t>(c.rank()) * 100);
    auto sorted = sort_even(c, local, std::less<>());
    auto all = gather_all(c, sorted);
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
    EXPECT_EQ(all.size(), static_cast<std::size_t>(c.size()) * 100u);
  });
}

TEST_P(SampleSortP, EmptyRanksHandled) {
  const int p = GetParam();
  launch(p, [](comm& c) {
    std::vector<std::uint64_t> local;
    if (c.rank() == 0) {
      local.resize(333);
      auto rng = util::make_stream(4, 0);
      for (auto& v : local) v = rng.uniform_below(50);  // heavy duplicates
    }
    auto sorted = sort_even(c, local, std::less<>());
    auto all = gather_all(c, sorted);
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
    EXPECT_EQ(all.size(), 333u);
  });
}

TEST_P(SampleSortP, AllEmpty) {
  launch(GetParam(), [](comm& c) {
    std::vector<int> local;
    auto sorted = sort_even(c, local, std::less<>());
    EXPECT_TRUE(sorted.empty());
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, SampleSortP,
                         ::testing::Values(1, 2, 3, 4, 8, 13));

TEST(SampleSort, RmatEdgesEndToEnd) {
  // The real pipeline input: RMAT slices sorted into an even edge-list
  // partition across 8 ranks.
  const gen::rmat_config cfg{.scale = 10, .edge_factor = 8, .seed = 11};
  launch(8, [&cfg](comm& c) {
    const auto range = gen::slice_for_rank(cfg.num_edges(), c.rank(), c.size());
    auto local = gen::rmat_slice(cfg, range.begin, range.end);
    auto sorted = sort_even(c, std::move(local), by_src_dst{});
    const auto total = c.all_reduce(
        static_cast<std::uint64_t>(sorted.size()), std::plus<>());
    EXPECT_EQ(total, cfg.num_edges());
    EXPECT_EQ(sorted.size(), cfg.num_edges() / 8);
    auto all = gather_all(c, sorted);
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end(), by_src_dst{}));
  });
}

}  // namespace
}  // namespace sfg::sort
