#include "storage/block_device.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace sfg::storage {
namespace {

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
  util::xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xff);
  return out;
}

template <typename Dev>
void roundtrip_check(Dev& dev) {
  const auto data = pattern_bytes(10000, 42);
  dev.write(128, data);
  std::vector<std::byte> back(10000);
  dev.read(128, back);
  EXPECT_EQ(back, data);
}

TEST(MemoryDevice, RoundTrip) {
  memory_device dev;
  roundtrip_check(dev);
  EXPECT_EQ(dev.size_bytes(), 10128u);
}

TEST(MemoryDevice, ReadPastEndIsZero) {
  memory_device dev;
  dev.write(0, pattern_bytes(16, 1));
  std::vector<std::byte> out(32);
  dev.read(8, out);
  for (std::size_t i = 8; i < 32; ++i) EXPECT_EQ(out[i], std::byte{0});
}

TEST(MemoryDevice, OverlappingWrites) {
  memory_device dev;
  const auto a = pattern_bytes(100, 1);
  const auto b = pattern_bytes(100, 2);
  dev.write(0, a);
  dev.write(50, b);
  std::vector<std::byte> out(150);
  dev.read(0, out);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(out[i], a[i]);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[50 + i], b[i]);
}

TEST(FileDevice, RoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "sfg_filedev_test.bin")
          .string();
  {
    file_device dev(path, /*truncate=*/true);
    roundtrip_check(dev);
  }
  // Reopen without truncation: data persists.
  {
    file_device dev(path, /*truncate=*/false);
    const auto expected = pattern_bytes(10000, 42);
    std::vector<std::byte> back(10000);
    dev.read(128, back);
    EXPECT_EQ(back, expected);
  }
  std::filesystem::remove(path);
}

TEST(FileDevice, ReadPastEofZeroFills) {
  const auto path =
      (std::filesystem::temp_directory_path() / "sfg_filedev_eof.bin")
          .string();
  file_device dev(path, true);
  dev.write(0, pattern_bytes(10, 3));
  std::vector<std::byte> out(64, std::byte{0xff});
  dev.read(0, out);
  for (std::size_t i = 10; i < 64; ++i) EXPECT_EQ(out[i], std::byte{0});
  std::filesystem::remove(path);
}

TEST(FileDevice, ThrowsOnBadPath) {
  EXPECT_THROW(file_device("/nonexistent_dir_xyz/f.bin", true),
               std::runtime_error);
}

TEST(SimNvram, RoundTripAndStats) {
  memory_device inner;
  sim_nvram_device dev(inner, {std::chrono::microseconds(1),
                               std::chrono::microseconds(1), 4});
  roundtrip_check(dev);
  const auto s = dev.stats();
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.bytes_read, 10000u);
  EXPECT_EQ(s.bytes_written, 10000u);
}

TEST(SimNvram, SerialLatencyIsEnforced) {
  memory_device inner;
  inner.write(0, pattern_bytes(4096, 5));
  sim_nvram_device dev(inner, {std::chrono::microseconds(2000),
                               std::chrono::microseconds(2000), 32});
  std::vector<std::byte> buf(64);
  util::timer t;
  constexpr int kOps = 10;
  for (int i = 0; i < kOps; ++i) dev.read(0, buf);
  // 10 serial reads at 2ms each must take >= ~20ms.
  EXPECT_GE(t.elapsed_ms(), 18.0);
}

TEST(SimNvram, ConcurrencyOverlapsLatency) {
  memory_device inner;
  inner.write(0, pattern_bytes(4096, 6));
  sim_nvram_device dev(inner, {std::chrono::microseconds(5000),
                               std::chrono::microseconds(5000), 16});
  // 16 concurrent readers with queue depth 16: wall time ~1 latency, far
  // below the 80ms serial time.  This is the paper's §II-B observation
  // that NVRAM needs high concurrent I/O for performance.
  util::timer t;
  std::vector<std::thread> threads;
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&dev] {
      std::vector<std::byte> buf(64);
      dev.read(0, buf);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LT(t.elapsed_ms(), 60.0);
}

TEST(SimNvram, QueueDepthBoundsConcurrency) {
  memory_device inner;
  sim_nvram_device dev(inner, {std::chrono::microseconds(5000),
                               std::chrono::microseconds(5000), 1});
  // Queue depth 1 serializes even concurrent requests: 6 reads at 5ms
  // each must take >= ~30ms of wall time.
  util::timer t;
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&dev] {
      std::vector<std::byte> buf(16);
      dev.read(0, buf);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(t.elapsed_ms(), 25.0);
}

TEST(SimNvram, RejectsZeroQueueDepth) {
  memory_device inner;
  EXPECT_THROW(sim_nvram_device(inner, {std::chrono::microseconds(1),
                                        std::chrono::microseconds(1), 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfg::storage
