#include "storage/mmap_device.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/page_cache.hpp"
#include "storage/paged_array.hpp"
#include "util/rng.hpp"

namespace sfg::storage {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(MmapDevice, RoundTrip) {
  const auto path = tmp_path("sfg_mmap_rt.bin");
  {
    mmap_device dev(path, 1 << 16);
    std::vector<std::byte> data(10000);
    util::xoshiro256 rng(1);
    for (auto& b : data) b = static_cast<std::byte>(rng() & 0xff);
    dev.write(128, data);
    std::vector<std::byte> back(10000);
    dev.read(128, back);
    EXPECT_EQ(back, data);
    dev.sync();
  }
  // Contents persist in the file after unmap.
  {
    mmap_device dev(path, 1 << 16);
    std::vector<std::byte> back(4);
    dev.read(128, back);
    util::xoshiro256 rng(1);
    for (const auto& b : back) EXPECT_EQ(b, static_cast<std::byte>(rng() & 0xff));
  }
  std::filesystem::remove(path);
}

TEST(MmapDevice, ReadPastEndZeroFills) {
  const auto path = tmp_path("sfg_mmap_eof.bin");
  mmap_device dev(path, 64);
  std::vector<std::byte> out(128, std::byte{0xff});
  dev.read(0, out);
  for (std::size_t i = 64; i < 128; ++i) EXPECT_EQ(out[i], std::byte{0});
  std::filesystem::remove(path);
}

TEST(MmapDevice, WriteBeyondMappingThrows) {
  const auto path = tmp_path("sfg_mmap_oob.bin");
  mmap_device dev(path, 64);
  std::vector<std::byte> data(65);
  EXPECT_THROW(dev.write(0, data), std::out_of_range);
  std::filesystem::remove(path);
}

TEST(MmapDevice, ZeroSizeRejected) {
  EXPECT_THROW(mmap_device(tmp_path("sfg_mmap_zero.bin"), 0),
               std::invalid_argument);
}

TEST(MmapDevice, WorksBehindPageCache) {
  const auto path = tmp_path("sfg_mmap_cache.bin");
  mmap_device dev(path, 1 << 16);
  std::vector<std::uint64_t> values(2048);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = util::splitmix64(i);
  }
  write_array<std::uint64_t>(dev, 0, values);
  page_cache cache(dev, {512, 8});
  paged_array<std::uint64_t> arr(cache, 0, values.size());
  util::xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto idx = rng.uniform_below(values.size());
    ASSERT_EQ(arr[idx], values[idx]);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sfg::storage
