#include "storage/page_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace sfg::storage {
namespace {

constexpr std::size_t kPage = 256;

/// Fill a device with deterministic per-page content.
void fill_device(block_device& dev, std::size_t num_pages) {
  for (std::size_t p = 0; p < num_pages; ++p) {
    std::vector<std::byte> page(kPage);
    util::xoshiro256 rng(p + 1);
    for (auto& b : page) b = static_cast<std::byte>(rng() & 0xff);
    dev.write(p * kPage, page);
  }
}

bool page_matches(std::span<const std::byte> data, std::size_t p) {
  util::xoshiro256 rng(p + 1);
  for (const auto& b : data) {
    if (b != static_cast<std::byte>(rng() & 0xff)) return false;
  }
  return true;
}

TEST(PageCache, MissThenHit) {
  memory_device dev;
  fill_device(dev, 8);
  page_cache cache(dev, {kPage, 4});
  {
    const auto ref = cache.get(3);
    EXPECT_TRUE(page_matches(ref.data(), 3));
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  {
    const auto ref = cache.get(3);
    EXPECT_TRUE(page_matches(ref.data(), 3));
  }
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PageCache, EvictionKeepsContentsCorrect) {
  memory_device dev;
  constexpr std::size_t kPages = 64;
  fill_device(dev, kPages);
  page_cache cache(dev, {kPage, 4});  // tiny cache: constant eviction
  util::xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto p = rng.uniform_below(kPages);
    const auto ref = cache.get(p);
    ASSERT_TRUE(page_matches(ref.data(), p)) << "page " << p;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(PageCache, WorkingSetWithinCacheNeverEvicts) {
  memory_device dev;
  fill_device(dev, 4);
  page_cache cache(dev, {kPage, 8});
  for (int round = 0; round < 100; ++round) {
    for (std::size_t p = 0; p < 4; ++p) {
      const auto ref = cache.get(p);
      ASSERT_TRUE(page_matches(ref.data(), p));
    }
  }
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().hits, 396u);
}

TEST(PageCache, DirtyPageWritesBackOnEviction) {
  memory_device dev;
  fill_device(dev, 8);
  page_cache cache(dev, {kPage, 2});
  {
    auto ref = cache.get(0);
    auto bytes = ref.mutable_data();
    bytes[0] = std::byte{0xAB};
    bytes[1] = std::byte{0xCD};
  }
  // Touch enough other pages to force page 0 out.
  for (std::size_t p = 1; p < 8; ++p) (void)cache.get(p);
  EXPECT_GT(cache.stats().writebacks, 0u);
  std::vector<std::byte> raw(2);
  dev.read(0, raw);
  EXPECT_EQ(raw[0], std::byte{0xAB});
  EXPECT_EQ(raw[1], std::byte{0xCD});
  // And reading it back through the cache sees the new bytes.
  const auto ref = cache.get(0);
  EXPECT_EQ(ref.data()[0], std::byte{0xAB});
}

TEST(PageCache, FlushDirtyPersistsWithoutEviction) {
  memory_device dev;
  page_cache cache(dev, {kPage, 4});
  {
    auto ref = cache.get(5);
    ref.mutable_data()[10] = std::byte{0x77};
  }
  cache.flush_dirty();
  std::vector<std::byte> raw(kPage);
  dev.read(5 * kPage, raw);
  EXPECT_EQ(raw[10], std::byte{0x77});
  EXPECT_EQ(cache.stats().writebacks, 1u);
  // Still cached: next access is a hit.
  (void)cache.get(5);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PageCache, PinnedPagesSurviveEvictionPressure) {
  memory_device dev;
  fill_device(dev, 32);
  page_cache cache(dev, {kPage, 4});
  const auto pinned = cache.get(0);
  // Hammer the rest of the cache.
  util::xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto p = 1 + rng.uniform_below(31);
    const auto ref = cache.get(p);
    ASSERT_TRUE(page_matches(ref.data(), p));
  }
  // The pinned view must still be intact.
  EXPECT_TRUE(page_matches(pinned.data(), 0));
}

TEST(PageCache, MoveTransfersPin) {
  memory_device dev;
  fill_device(dev, 2);
  page_cache cache(dev, {kPage, 2});
  auto a = cache.get(1);
  page_cache::page_ref b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.valid());
  EXPECT_TRUE(page_matches(b.data(), 1));
}

TEST(PageCache, ConcurrentReadersSeeConsistentData) {
  memory_device dev;
  constexpr std::size_t kPages = 128;
  fill_device(dev, kPages);
  page_cache cache(dev, {kPage, 16});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      auto rng = util::make_stream(55, static_cast<std::uint64_t>(t));
      for (int i = 0; i < 1500; ++i) {
        const auto p = rng.uniform_below(kPages);
        const auto ref = cache.get(p);
        if (!page_matches(ref.data(), p)) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 8u * 1500u);
}

TEST(PageCache, ConcurrentMissesOnSamePageLoadOnce) {
  memory_device dev;
  fill_device(dev, 1);
  // Slow device so the threads really do race into the miss path.
  sim_nvram_device slow(dev, {std::chrono::microseconds(3000),
                              std::chrono::microseconds(3000), 32});
  page_cache cache(slow, {kPage, 8});
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &failures] {
      const auto ref = cache.get(0);
      if (!page_matches(ref.data(), 0)) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 7u);
}

TEST(PageCache, AllFramesPinnedBlocksUntilUnpin) {
  memory_device dev;
  fill_device(dev, 8);
  page_cache cache(dev, {kPage, 2});
  auto a = cache.get(0);
  {
    auto b = cache.get(1);
    // Third get must wait for an unpin from another thread.
    std::atomic<bool> got{false};
    std::thread waiter([&cache, &got] {
      const auto c = cache.get(2);
      got.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(got.load());
    b = page_cache::page_ref{};  // release pin
    waiter.join();
    EXPECT_TRUE(got.load());
  }
}

TEST(PageCache, RejectsZeroConfig) {
  memory_device dev;
  EXPECT_THROW(page_cache(dev, {0, 4}), std::invalid_argument);
  EXPECT_THROW(page_cache(dev, {kPage, 0}), std::invalid_argument);
}

TEST(PageCache, RegistryDeltasMatchLocalStatsAndSurviveReset) {
  // Pins the intended split between the two stat surfaces: cache_stats is
  // per-instance and resettable; the cache.* registry counters are
  // process-wide monotonic (shared by every cache, diffed into rates by
  // the time-series sampler).  Over a window of operations the registry
  // deltas must equal the cache_stats deltas, and reset_stats() must
  // clear only the local side.
  const bool saved = obs::metrics_on();
  obs::set_metrics_enabled(true);
  auto& reg = obs::metrics_registry::instance();
  auto& r_hits = reg.get_counter("cache.hits");
  auto& r_misses = reg.get_counter("cache.misses");
  auto& r_wb = reg.get_counter("cache.writebacks");

  memory_device dev;
  fill_device(dev, 8);
  page_cache cache(dev, {kPage, 2});
  const std::uint64_t hits0 = r_hits.value();
  const std::uint64_t misses0 = r_misses.value();
  const std::uint64_t wb0 = r_wb.value();

  for (int round = 0; round < 2; ++round) {
    for (std::size_t p = 0; p < 4; ++p) {
      auto ref = cache.get(p);           // misses + evictions under pressure
      ref.mutable_data()[0] = std::byte{0xAB};  // dirty -> writebacks
    }
    cache.get(3);  // immediate re-get: a hit
  }
  cache.flush_dirty();

  const auto local = cache.stats();
  EXPECT_EQ(r_hits.value() - hits0, local.hits);
  EXPECT_EQ(r_misses.value() - misses0, local.misses);
  EXPECT_EQ(r_wb.value() - wb0, local.writebacks);
  EXPECT_GT(local.misses, 0u);
  EXPECT_GT(local.writebacks, 0u);

  // reset_stats() zeroes only the instance snapshot; the process-wide
  // registry keeps counting from where it was.
  const std::uint64_t misses_before_reset = r_misses.value();
  cache.reset_stats();
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(r_misses.value(), misses_before_reset)
      << "reset_stats() must not touch the shared registry counters";
  // And the next window diffs cleanly on both surfaces.
  const std::uint64_t hits1 = r_hits.value();
  cache.get(3);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(r_hits.value() - hits1, 1u);

  obs::set_metrics_enabled(saved);
}

}  // namespace
}  // namespace sfg::storage
