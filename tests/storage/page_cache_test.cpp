#include "storage/page_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace sfg::storage {
namespace {

constexpr std::size_t kPage = 256;

/// Fill a device with deterministic per-page content.
void fill_device(block_device& dev, std::size_t num_pages) {
  for (std::size_t p = 0; p < num_pages; ++p) {
    std::vector<std::byte> page(kPage);
    util::xoshiro256 rng(p + 1);
    for (auto& b : page) b = static_cast<std::byte>(rng() & 0xff);
    dev.write(p * kPage, page);
  }
}

bool page_matches(std::span<const std::byte> data, std::size_t p) {
  util::xoshiro256 rng(p + 1);
  for (const auto& b : data) {
    if (b != static_cast<std::byte>(rng() & 0xff)) return false;
  }
  return true;
}

TEST(PageCache, MissThenHit) {
  memory_device dev;
  fill_device(dev, 8);
  page_cache cache(dev, {kPage, 4});
  {
    const auto ref = cache.get(3);
    EXPECT_TRUE(page_matches(ref.data(), 3));
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  {
    const auto ref = cache.get(3);
    EXPECT_TRUE(page_matches(ref.data(), 3));
  }
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PageCache, EvictionKeepsContentsCorrect) {
  memory_device dev;
  constexpr std::size_t kPages = 64;
  fill_device(dev, kPages);
  page_cache cache(dev, {kPage, 4});  // tiny cache: constant eviction
  util::xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto p = rng.uniform_below(kPages);
    const auto ref = cache.get(p);
    ASSERT_TRUE(page_matches(ref.data(), p)) << "page " << p;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(PageCache, WorkingSetWithinCacheNeverEvicts) {
  memory_device dev;
  fill_device(dev, 4);
  page_cache cache(dev, {kPage, 8});
  for (int round = 0; round < 100; ++round) {
    for (std::size_t p = 0; p < 4; ++p) {
      const auto ref = cache.get(p);
      ASSERT_TRUE(page_matches(ref.data(), p));
    }
  }
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().hits, 396u);
}

TEST(PageCache, DirtyPageWritesBackOnEviction) {
  memory_device dev;
  fill_device(dev, 8);
  page_cache cache(dev, {kPage, 2});
  {
    auto ref = cache.get(0);
    auto bytes = ref.mutable_data();
    bytes[0] = std::byte{0xAB};
    bytes[1] = std::byte{0xCD};
  }
  // Touch enough other pages to force page 0 out.
  for (std::size_t p = 1; p < 8; ++p) (void)cache.get(p);
  EXPECT_GT(cache.stats().writebacks, 0u);
  std::vector<std::byte> raw(2);
  dev.read(0, raw);
  EXPECT_EQ(raw[0], std::byte{0xAB});
  EXPECT_EQ(raw[1], std::byte{0xCD});
  // And reading it back through the cache sees the new bytes.
  const auto ref = cache.get(0);
  EXPECT_EQ(ref.data()[0], std::byte{0xAB});
}

TEST(PageCache, FlushDirtyPersistsWithoutEviction) {
  memory_device dev;
  page_cache cache(dev, {kPage, 4});
  {
    auto ref = cache.get(5);
    ref.mutable_data()[10] = std::byte{0x77};
  }
  cache.flush_dirty();
  std::vector<std::byte> raw(kPage);
  dev.read(5 * kPage, raw);
  EXPECT_EQ(raw[10], std::byte{0x77});
  EXPECT_EQ(cache.stats().writebacks, 1u);
  // Still cached: next access is a hit.
  (void)cache.get(5);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PageCache, PinnedPagesSurviveEvictionPressure) {
  memory_device dev;
  fill_device(dev, 32);
  page_cache cache(dev, {kPage, 4});
  const auto pinned = cache.get(0);
  // Hammer the rest of the cache.
  util::xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto p = 1 + rng.uniform_below(31);
    const auto ref = cache.get(p);
    ASSERT_TRUE(page_matches(ref.data(), p));
  }
  // The pinned view must still be intact.
  EXPECT_TRUE(page_matches(pinned.data(), 0));
}

TEST(PageCache, MoveTransfersPin) {
  memory_device dev;
  fill_device(dev, 2);
  page_cache cache(dev, {kPage, 2});
  auto a = cache.get(1);
  page_cache::page_ref b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.valid());
  EXPECT_TRUE(page_matches(b.data(), 1));
}

TEST(PageCache, ConcurrentReadersSeeConsistentData) {
  memory_device dev;
  constexpr std::size_t kPages = 128;
  fill_device(dev, kPages);
  page_cache cache(dev, {kPage, 16});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      auto rng = util::make_stream(55, static_cast<std::uint64_t>(t));
      for (int i = 0; i < 1500; ++i) {
        const auto p = rng.uniform_below(kPages);
        const auto ref = cache.get(p);
        if (!page_matches(ref.data(), p)) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 8u * 1500u);
}

TEST(PageCache, ConcurrentMissesOnSamePageLoadOnce) {
  memory_device dev;
  fill_device(dev, 1);
  // Slow device so the threads really do race into the miss path.
  sim_nvram_device slow(dev, {std::chrono::microseconds(3000),
                              std::chrono::microseconds(3000), 32});
  page_cache cache(slow, {kPage, 8});
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &failures] {
      const auto ref = cache.get(0);
      if (!page_matches(ref.data(), 0)) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 7u);
}

TEST(PageCache, AllFramesPinnedBlocksUntilUnpin) {
  memory_device dev;
  fill_device(dev, 8);
  page_cache cache(dev, {kPage, 2});
  auto a = cache.get(0);
  {
    auto b = cache.get(1);
    // Third get must wait for an unpin from another thread.
    std::atomic<bool> got{false};
    std::thread waiter([&cache, &got] {
      const auto c = cache.get(2);
      got.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(got.load());
    b = page_cache::page_ref{};  // release pin
    waiter.join();
    EXPECT_TRUE(got.load());
  }
}

TEST(PageCache, RejectsZeroConfig) {
  memory_device dev;
  EXPECT_THROW(page_cache(dev, {0, 4}), std::invalid_argument);
  EXPECT_THROW(page_cache(dev, {kPage, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace sfg::storage
