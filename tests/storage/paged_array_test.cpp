#include "storage/paged_array.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "storage/block_device.hpp"
#include "util/rng.hpp"

namespace sfg::storage {
namespace {

constexpr std::size_t kPage = 128;  // 16 uint64 per page

std::vector<std::uint64_t> make_values(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = util::splitmix64(i);
  return v;
}

TEST(PagedArray, RandomAccessMatchesSource) {
  memory_device dev;
  const auto values = make_values(1000);
  write_array<std::uint64_t>(dev, 0, values);
  page_cache cache(dev, {kPage, 8});
  paged_array<std::uint64_t> arr(cache, 0, values.size());
  EXPECT_EQ(arr.size(), 1000u);
  util::xoshiro256 rng(1);
  for (int i = 0; i < 3000; ++i) {
    const auto idx = rng.uniform_below(values.size());
    ASSERT_EQ(arr[idx], values[idx]) << idx;
  }
}

TEST(PagedArray, NonZeroBaseOffset) {
  memory_device dev;
  const auto values = make_values(100);
  const std::uint64_t base = 4 * kPage;
  write_array<std::uint64_t>(dev, base, values);
  page_cache cache(dev, {kPage, 4});
  paged_array<std::uint64_t> arr(cache, base, values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(arr[i], values[i]);
  }
}

TEST(PagedArray, SequentialScanFaultsEachPageOnce) {
  memory_device dev;
  constexpr std::size_t kN = 16 * 10;  // exactly 10 pages
  const auto values = make_values(kN);
  write_array<std::uint64_t>(dev, 0, values);
  page_cache cache(dev, {kPage, 4});
  paged_array<std::uint64_t> arr(cache, 0, kN);
  std::uint64_t sum = 0;
  arr.for_each(0, kN, [&](std::size_t, std::uint64_t v) { sum += v; });
  const std::uint64_t expected =
      std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  EXPECT_EQ(sum, expected);
  // One miss per page; the cursor holds the page pinned across its 16
  // elements, so there are no extra cache probes at all.
  EXPECT_EQ(cache.stats().misses, 10u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PagedArray, PartialRangeForEach) {
  memory_device dev;
  const auto values = make_values(64);
  write_array<std::uint64_t>(dev, 0, values);
  page_cache cache(dev, {kPage, 4});
  paged_array<std::uint64_t> arr(cache, 0, 64);
  std::vector<std::uint64_t> seen;
  arr.for_each(10, 30, [&](std::size_t i, std::uint64_t v) {
    EXPECT_EQ(v, values[i]);
    seen.push_back(v);
  });
  EXPECT_EQ(seen.size(), 20u);
}

TEST(PagedArray, CursorCrossesPageBoundaries) {
  memory_device dev;
  const auto values = make_values(40);  // 2.5 pages
  write_array<std::uint64_t>(dev, 0, values);
  page_cache cache(dev, {kPage, 4});
  paged_array<std::uint64_t> arr(cache, 0, 40);
  auto cur = arr.scan(14);  // starts near a page boundary
  std::size_t i = 14;
  while (!cur.done()) {
    ASSERT_EQ(cur.value(), values[i]);
    cur.advance();
    ++i;
  }
  EXPECT_EQ(i, 40u);
}

TEST(PagedArray, EmptyArray) {
  memory_device dev;
  page_cache cache(dev, {kPage, 2});
  paged_array<std::uint32_t> arr(cache, 0, 0);
  EXPECT_TRUE(arr.empty());
  int calls = 0;
  arr.for_each(0, 0, [&](std::size_t, std::uint32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(PagedArray, WorksThroughSimNvram) {
  memory_device inner;
  const auto values = make_values(200);
  write_array<std::uint64_t>(inner, 0, values);
  sim_nvram_device nvram(inner, {std::chrono::microseconds(10),
                                 std::chrono::microseconds(10), 8});
  page_cache cache(nvram, {kPage, 4});
  paged_array<std::uint64_t> arr(cache, 0, values.size());
  for (std::size_t i = 0; i < values.size(); i += 7) {
    ASSERT_EQ(arr[i], values[i]);
  }
  EXPECT_GT(nvram.stats().reads, 0u);
}

}  // namespace
}  // namespace sfg::storage
