/// Zero-allocation tests for the page-cache hit path (DESIGN.md §12):
/// once the working set is resident, get() on a cached page is a table
/// lookup + pin — no heap traffic — and turning the I/O-attribution
/// layer on (SFG_IO_HIST) must not change that.  The latency histograms
/// are fixed bucket arrays, the reuse-distance estimator is a fixed
/// 256-slot table, and per-frame touch counts live in the preallocated
/// frame array, so attribution adds clock reads and stores, never
/// allocations.
///
/// Own binary: this TU replaces global operator new/delete with counting
/// versions (same pattern as tests/mailbox/mailbox_alloc_test.cpp); two
/// such TUs cannot share a binary.
#include "storage/page_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "obs/metrics.hpp"
#include "storage/block_device.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sfg::storage {
namespace {

constexpr std::size_t kPage = 512;
constexpr std::size_t kFrames = 16;

/// Warm every page of the working set into a frame, then hammer hits and
/// return the allocation delta over the steady-state phase.
std::uint64_t hit_phase_allocations(page_cache& cache) {
  std::uint64_t sink = 0;
  for (std::size_t p = 0; p < kFrames; ++p) {
    auto ref = cache.get(p, sizeof(std::uint64_t));
    sink += ref.data().size();
  }
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 256; ++round) {
    for (std::size_t p = 0; p < kFrames; ++p) {
      auto ref = cache.get(p, sizeof(std::uint64_t));
      sink += ref.data()[0] == std::byte{0} ? 1u : 0u;
    }
  }
  EXPECT_GT(sink, 0u);
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(StorageAlloc, HitPathAllocatesNothingWithAttributionOff) {
  obs::set_io_hist_enabled(false);
  memory_device dev;
  page_cache cache(dev, {kPage, kFrames});
  EXPECT_EQ(hit_phase_allocations(cache), 0u)
      << "page-cache hit path allocated with I/O attribution off";
}

TEST(StorageAlloc, HitPathAllocatesNothingWithAttributionOn) {
  obs::set_io_hist_enabled(true);
  memory_device dev;
  page_cache cache(dev, {kPage, kFrames});
  const std::uint64_t delta = hit_phase_allocations(cache);
  obs::set_io_hist_enabled(false);
  EXPECT_EQ(delta, 0u)
      << "I/O attribution (SFG_IO_HIST) allocated on the page-cache hit path";
}

}  // namespace
}  // namespace sfg::storage
