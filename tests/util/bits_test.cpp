#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace sfg::util {
namespace {

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(1ULL << 40), 40u);
  EXPECT_EQ(log2_floor((1ULL << 40) + 5), 40u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 50));
  EXPECT_FALSE(is_pow2((1ULL << 50) + 1));
}

TEST(Bits, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(1000), 1024u);
}

TEST(Bits, DivCeil) {
  EXPECT_EQ(div_ceil(0, 4), 0u);
  EXPECT_EQ(div_ceil(1, 4), 1u);
  EXPECT_EQ(div_ceil(4, 4), 1u);
  EXPECT_EQ(div_ceil(5, 4), 2u);
}

TEST(Bits, NearSquareFactors) {
  auto s16 = near_square_factors(16);
  EXPECT_EQ(s16.rows, 4);
  EXPECT_EQ(s16.cols, 4);

  auto s12 = near_square_factors(12);
  EXPECT_EQ(s12.rows, 3);
  EXPECT_EQ(s12.cols, 4);

  auto s7 = near_square_factors(7);  // prime: degenerates to 1 x p
  EXPECT_EQ(s7.rows, 1);
  EXPECT_EQ(s7.cols, 7);

  auto s1 = near_square_factors(1);
  EXPECT_EQ(s1.rows, 1);
  EXPECT_EQ(s1.cols, 1);
}

TEST(Bits, NearSquareFactorsProductInvariant) {
  for (int p = 1; p <= 200; ++p) {
    const auto s = near_square_factors(p);
    EXPECT_EQ(s.rows * s.cols, p);
    EXPECT_LE(s.rows, s.cols);
  }
}

TEST(Bits, NearCubeFactors) {
  auto c8 = near_cube_factors(8);
  EXPECT_EQ(c8.x, 2);
  EXPECT_EQ(c8.y, 2);
  EXPECT_EQ(c8.z, 2);

  auto c64 = near_cube_factors(64);
  EXPECT_EQ(c64.x, 4);
  EXPECT_EQ(c64.y, 4);
  EXPECT_EQ(c64.z, 4);

  auto c12 = near_cube_factors(12);
  EXPECT_EQ(c12.x * c12.y * c12.z, 12);
}

TEST(Bits, NearCubeFactorsProductInvariant) {
  for (int p = 1; p <= 200; ++p) {
    const auto c = near_cube_factors(p);
    EXPECT_EQ(c.x * c.y * c.z, p);
    EXPECT_LE(c.x, c.y);
    EXPECT_LE(c.y, c.z);
  }
}

}  // namespace
}  // namespace sfg::util
