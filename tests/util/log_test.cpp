/// Log-prefix tests: wall-clock + rank-id stamping added for the
/// observability work.  The format contract is
///   [sfg HH:MM:SS.mmm rN LEVEL]
/// with "r-" for threads outside any rank.
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <regex>
#include <thread>

namespace sfg::util {
namespace {

TEST(Log, PrefixFormat) {
  set_thread_rank(-1);
  const std::string p = log_prefix(log_level::info);
  // e.g. "[sfg 14:03:52.118 r- INFO] "
  const std::regex re(
      R"(\[sfg \d{2}:\d{2}:\d{2}\.\d{3} r- INFO\] )");
  EXPECT_TRUE(std::regex_match(p, re)) << p;
}

TEST(Log, PrefixIncludesRank) {
  set_thread_rank(3);
  const std::string p = log_prefix(log_level::warn);
  EXPECT_NE(p.find(" r3 WARN] "), std::string::npos) << p;
  set_thread_rank(-1);
  EXPECT_NE(log_prefix(log_level::warn).find(" r- "), std::string::npos);
}

TEST(Log, LevelNames) {
  set_thread_rank(-1);
  EXPECT_NE(log_prefix(log_level::error).find("ERROR]"), std::string::npos);
  EXPECT_NE(log_prefix(log_level::warn).find("WARN]"), std::string::npos);
  EXPECT_NE(log_prefix(log_level::info).find("INFO]"), std::string::npos);
  EXPECT_NE(log_prefix(log_level::debug).find("DEBUG]"), std::string::npos);
}

TEST(Log, ThreadRankIsPerThread) {
  set_thread_rank(7);
  int other = -2;
  std::thread([&other] {
    // A fresh thread starts unranked regardless of the parent's tag.
    other = thread_rank();
    set_thread_rank(1);
    EXPECT_EQ(thread_rank(), 1);
  }).join();
  EXPECT_EQ(other, -1);
  EXPECT_EQ(thread_rank(), 7);
  set_thread_rank(-1);
}

}  // namespace
}  // namespace sfg::util
