#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>
#include <vector>

namespace sfg::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(0), splitmix64(1));
}

TEST(SplitMix64, KnownVector) {
  // Reference values for the standard splitmix64 (state starts at seed,
  // first output after adding the golden gamma).
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
}

TEST(Xoshiro256, SameSeedSameSequence) {
  xoshiro256 a(123);
  xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  xoshiro256 a(1);
  xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, ZeroSeedIsValid) {
  xoshiro256 g(0);
  // State must not be all-zero (which would be a fixed point).
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(g());
  EXPECT_GT(seen.size(), 90u);
}

TEST(Xoshiro256, UniformBelowRespectsBound) {
  xoshiro256 g(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(g.uniform_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, UniformBelowOneIsAlwaysZero) {
  xoshiro256 g(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(g.uniform_below(1), 0u);
}

TEST(Xoshiro256, UniformBelowIsRoughlyUniform) {
  xoshiro256 g(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) {
    counts[g.uniform_below(kBuckets)]++;
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Xoshiro256, UniformRealInUnitInterval) {
  xoshiro256 g(13);
  double sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = g.uniform_real();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  xoshiro256 g(17);
  constexpr int kSamples = 50000;
  for (const double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    int hits = 0;
    for (int i = 0; i < kSamples; ++i) {
      if (g.bernoulli(p)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, p, 0.01) << "p=" << p;
  }
}

TEST(MakeStream, StreamsAreIndependent) {
  auto a = make_stream(42, 0);
  auto b = make_stream(42, 1);
  auto c = make_stream(42, 0);
  EXPECT_NE(a(), b());
  auto a2 = make_stream(42, 0);
  (void)c;
  xoshiro256 fresh = make_stream(42, 0);
  EXPECT_EQ(a2(), fresh());
}

}  // namespace
}  // namespace sfg::util
