#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sfg::util {
namespace {

TEST(Summary, EmptyInput) {
  const summary s = summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, SingleValue) {
  const std::vector<double> v{5.0};
  const summary s = summarize(std::span<const double>(v));
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownDistribution) {
  const std::vector<std::uint64_t> v{2, 4, 4, 4, 5, 5, 7, 9};
  const summary s = summarize(std::span<const std::uint64_t>(v));
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Imbalance, PerfectlyBalanced) {
  const std::vector<std::uint64_t> v{100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(imbalance(v), 1.0);
}

TEST(Imbalance, WorstPartitionDominates) {
  // One partition has 4x the mean.
  const std::vector<std::uint64_t> v{400, 0, 0, 0};
  EXPECT_DOUBLE_EQ(imbalance(v), 4.0);
}

TEST(Imbalance, EmptyOrZeroIsOne) {
  EXPECT_DOUBLE_EQ(imbalance(std::span<const std::uint64_t>{}), 1.0);
  const std::vector<std::uint64_t> zeros{0, 0, 0};
  EXPECT_DOUBLE_EQ(imbalance(zeros), 1.0);
}

TEST(Log2Histogram, BucketsByPowerOfTwo) {
  log2_histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1023);
  h.add(1024);
  EXPECT_EQ(h.bucket_count(0), 2u);  // values 0 and 1
  EXPECT_EQ(h.bucket_count(1), 2u);  // values 2, 3
  EXPECT_EQ(h.bucket_count(2), 1u);  // value 4
  EXPECT_EQ(h.bucket_count(9), 1u);  // 1023 in [512, 1024)
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Log2Histogram, WeightsAccumulate) {
  log2_histogram h;
  h.add(16, 10);
  h.add(17, 5);
  EXPECT_EQ(h.bucket_count(4), 15u);
  EXPECT_EQ(h.total(), 15u);
}

TEST(Log2Histogram, ToStringRendersAllBuckets) {
  log2_histogram h;
  h.add(1);
  h.add(100);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[0, 1]"), std::string::npos);
  EXPECT_NE(s.find("[64, 127]"), std::string::npos);
}

}  // namespace
}  // namespace sfg::util
