#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sfg::util {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  table t({"scale", "teps"});
  t.row().add(20).add(1.5, 2);
  t.row().add(21).add(3.25, 2);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("scale"), std::string::npos);
  EXPECT_NE(s.find("teps"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
}

TEST(Table, CsvOutput) {
  table t({"a", "b"});
  t.row().add(std::uint64_t{7}).add("x");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n7,x\n");
}

TEST(Table, ColumnsAligned) {
  table t({"x", "value"});
  t.row().add(1).add(std::uint64_t{1000000});
  std::ostringstream os;
  t.print(os);
  // Header cell "x" padded to width of widest cell in column 0.
  const std::string s = os.str();
  EXPECT_NE(s.find("1000000"), std::string::npos);
}

}  // namespace
}  // namespace sfg::util
