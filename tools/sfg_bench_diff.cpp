/// \file sfg_bench_diff.cpp
/// Perf-regression gate over sfg-bench-report/1 directories.
///
///   sfg_bench_diff --baseline DIR --current DIR [--max-regress PCT]
///                  [--min-speedup NAME=FACTOR]... [--format=table|md]
///
/// For every BENCH_*.json in the baseline directory, the same-named file
/// must exist in the current directory.  Within each pair, every table
/// whose header row contains "benchmark" and "ns_per_op" is compared row
/// by row (matched on the benchmark name):
///
///   - a row whose current ns_per_op exceeds baseline * (1 + PCT/100)
///     is a regression (default PCT: 25),
///   - a baseline row missing from the current report is a failure
///     (a silently dropped bench must not pass the gate),
///   - --min-speedup NAME=FACTOR additionally requires
///     baseline/current >= FACTOR for that row (used to assert the
///     speedups a PR claims, e.g. queue/push_pop/bfs=1.3).
///
/// Prints a per-row table (baseline ns, current ns, speedup) and exits 0
/// only if every check passes.  --format=md renders the same rows as a
/// GitHub-flavored markdown pipe table instead, so CI can append the
/// output to $GITHUB_STEP_SUMMARY; the exit semantics are unchanged.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace {

using sfg::obs::json;
namespace fs = std::filesystem;

int g_failures = 0;

void fail(const std::string& why) {
  std::cerr << "sfg_bench_diff: FAIL: " << why << "\n";
  ++g_failures;
}

std::optional<json> load(const fs::path& file) {
  std::ifstream in(file);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return json::parse(ss.str());
}

/// benchmark-name -> ns_per_op, over every "micro"-shaped table in a
/// bench report (headers contain "benchmark" and "ns_per_op").
std::map<std::string, double> extract_rows(const json& doc) {
  std::map<std::string, double> out;
  const json* tables = doc.find("tables");
  if (tables == nullptr || !tables->is_object()) return out;
  for (const auto& [tname, t] : tables->items()) {
    (void)tname;
    const json* headers = t.find("headers");
    const json* rows = t.find("rows");
    if (headers == nullptr || rows == nullptr) continue;
    int name_col = -1;
    int ns_col = -1;
    for (std::size_t i = 0; i < headers->size(); ++i) {
      const std::string h = headers->at(i).as_string();
      if (h == "benchmark") name_col = static_cast<int>(i);
      if (h == "ns_per_op") ns_col = static_cast<int>(i);
    }
    if (name_col < 0 || ns_col < 0) continue;
    for (std::size_t r = 0; r < rows->size(); ++r) {
      const json& row = rows->at(r);
      out[row.at(static_cast<std::size_t>(name_col)).as_string()] =
          row.at(static_cast<std::size_t>(ns_col)).as_double();
    }
  }
  return out;
}

int usage() {
  std::cerr << "usage: sfg_bench_diff --baseline DIR --current DIR "
               "[--max-regress PCT] [--min-speedup NAME=FACTOR]... "
               "[--format=table|md]\n";
  return 2;
}

struct diff_row {
  std::string name;
  double base_ns;
  double cur_ns;
  double speedup;
};

void print_table(const std::vector<diff_row>& rows) {
  sfg::util::table out({"benchmark", "baseline_ns", "current_ns", "speedup"});
  for (const auto& r : rows) {
    out.row().add(r.name).add(r.base_ns, 2).add(r.cur_ns, 2).add(r.speedup, 3);
  }
  out.print(std::cout);
}

void print_markdown(const std::vector<diff_row>& rows) {
  std::cout << "| benchmark | baseline_ns | current_ns | speedup |\n"
               "|---|---:|---:|---:|\n";
  char buf[256];
  for (const auto& r : rows) {
    std::snprintf(buf, sizeof buf, "| %s | %.2f | %.2f | %.3f |\n",
                  r.name.c_str(), r.base_ns, r.cur_ns, r.speedup);
    std::cout << buf;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_dir;
  std::string current_dir;
  double max_regress_pct = 25.0;
  std::string format = "table";
  std::map<std::string, double> min_speedup;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--format" || a.rfind("--format=", 0) == 0) {
      if (a == "--format") {
        const char* v = next();
        if (v == nullptr) return usage();
        format = v;
      } else {
        format = a.substr(std::string("--format=").size());
      }
      if (format != "table" && format != "md") return usage();
    } else if (a == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage();
      baseline_dir = v;
    } else if (a == "--current") {
      const char* v = next();
      if (v == nullptr) return usage();
      current_dir = v;
    } else if (a == "--max-regress") {
      const char* v = next();
      if (v == nullptr) return usage();
      max_regress_pct = std::strtod(v, nullptr);
    } else if (a == "--min-speedup") {
      const char* v = next();
      if (v == nullptr) return usage();
      const std::string spec(v);
      const auto eq = spec.rfind('=');
      if (eq == std::string::npos) return usage();
      min_speedup[spec.substr(0, eq)] =
          std::strtod(spec.c_str() + eq + 1, nullptr);
    } else {
      return usage();
    }
  }
  if (baseline_dir.empty() || current_dir.empty()) return usage();
  if (!fs::is_directory(baseline_dir)) {
    fail("baseline dir not found: " + baseline_dir);
    return 1;
  }

  std::vector<diff_row> out_rows;
  std::size_t reports = 0;
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(baseline_dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && e.path().extension() == ".json") {
      files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& base_path : files) {
    const fs::path cur_path = fs::path(current_dir) / base_path.filename();
    const auto base = load(base_path);
    if (!base) {
      fail("cannot parse baseline " + base_path.string());
      continue;
    }
    const auto cur = load(cur_path);
    if (!cur) {
      fail("missing/unparsable current report " + cur_path.string());
      continue;
    }
    ++reports;
    const auto base_rows = extract_rows(*base);
    auto cur_rows = extract_rows(*cur);
    for (const auto& [name, base_ns] : base_rows) {
      const auto it = cur_rows.find(name);
      if (it == cur_rows.end()) {
        fail(name + ": present in baseline, missing from current report");
        continue;
      }
      const double cur_ns = it->second;
      const double speedup = cur_ns > 0 ? base_ns / cur_ns : 0.0;
      out_rows.push_back({name, base_ns, cur_ns, speedup});
      if (cur_ns > base_ns * (1.0 + max_regress_pct / 100.0)) {
        fail(name + ": regressed " +
             std::to_string((cur_ns / base_ns - 1.0) * 100.0) + "% (limit " +
             std::to_string(max_regress_pct) + "%)");
      }
      if (const auto ms = min_speedup.find(name); ms != min_speedup.end()) {
        if (speedup < ms->second) {
          fail(name + ": speedup " + std::to_string(speedup) + "x below " +
               "required " + std::to_string(ms->second) + "x");
        }
        min_speedup.erase(ms);
      }
    }
  }
  for (const auto& [name, factor] : min_speedup) {
    fail("--min-speedup " + name + "=" + std::to_string(factor) +
         ": benchmark not found in any report pair");
  }
  if (format == "md") {
    print_markdown(out_rows);
  } else {
    print_table(out_rows);
  }
  if (files.empty()) fail("no BENCH_*.json reports found in " + baseline_dir);
  (void)reports;
  if (g_failures == 0) {
    std::cout << "sfg_bench_diff: " << reports << " report(s) OK\n";
    return 0;
  }
  return 1;
}
