/// \file sfg_cli.cpp
/// Command-line driver for the sfg library: generate synthetic graphs to
/// edge-list files, inspect them, and run any of the distributed
/// algorithms over them.
///
///   sfg_cli generate --model rmat|pa|sw --scale S [--rewire R]
///           [--seed N] --out FILE [--text]
///   sfg_cli info FILE
///   sfg_cli bfs FILE [--ranks P] [--source GID] [--ghosts K] [--validate]
///   sfg_cli kcore FILE --k K [--ranks P]
///   sfg_cli triangles FILE [--ranks P] [--approx SAMPLES]
///   sfg_cli components FILE [--ranks P]
///   sfg_cli pagerank FILE [--ranks P] [--eps E]
///
/// Every algorithm command also accepts the placement flags:
///   --partitioner=NAME   edge placement strategy: edge_list (default,
///                        the paper's sorted-chunk scheme), dbh, hdrf,
///                        or sne (graph/partitioner.hpp)
///   --hdrf-lambda L      HDRF balance knob (only with --partitioner=hdrf)
/// and the observability flags:
///   --json-report PATH   write a machine-readable run report (metrics
///                        registry snapshot + run parameters) after the run
///   --trace PATH         record a Chrome-trace/Perfetto timeline of the
///                        run (spans per rank: traversal, mailbox flushes,
///                        termination waves, cache I/O)
/// equivalent to the SFG_METRICS / SFG_TRACE environment variables.
///
/// FILEs ending in .txt are treated as text edge lists, anything else as
/// the packed binary format (io/edge_list_io.hpp).
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/bfs.hpp"
#include "core/bfs_hybrid.hpp"
#include "core/bfs_validate.hpp"
#include "core/connected_components.hpp"
#include "core/kcore.hpp"
#include "core/pagerank.hpp"
#include "core/triangles.hpp"
#include "core/wedge_sampling.hpp"
#include "gen/generators.hpp"
#include "graph/distributed_graph.hpp"
#include "graph/partitioner.hpp"
#include "io/edge_list_io.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "runtime/runtime.hpp"
#include "storage/block_device.hpp"
#include "storage/page_cache.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

struct args_map {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  [[nodiscard]] std::string opt(const std::string& key,
                                const std::string& def) const {
    const auto it = options.find(key);
    return it == options.end() ? def : it->second;
  }
  [[nodiscard]] std::uint64_t opt_u64(const std::string& key,
                                      std::uint64_t def) const {
    const auto it = options.find(key);
    return it == options.end() ? def : std::stoull(it->second);
  }
  [[nodiscard]] double opt_f64(const std::string& key, double def) const {
    const auto it = options.find(key);
    return it == options.end() ? def : std::stod(it->second);
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return flags.contains(key);
  }
};

/// What a command accepts: value-taking options (--key VALUE / --key=VALUE)
/// and boolean flags.  Parsing against a spec makes unknown or malformed
/// arguments a hard error (usage + exit 2) instead of silently-accepted
/// noise, and lets flags never swallow a following positional ("--em
/// file.bin" keeps file.bin as the input path).
struct arg_spec {
  std::set<std::string> options;
  std::set<std::string> flags;
};

/// Options whose values must parse fully as numbers; checked at parse
/// time so opt_u64/opt_f64 (std::stoull/std::stod) can never throw on
/// user input.
const std::set<std::string> kU64Options = {
    "scale", "seed", "ranks", "source", "ghosts",
    "k",     "approx", "em-frames", "em-page", "mem-budget"};
const std::set<std::string> kF64Options = {"rewire", "hdrf-lambda", "eps"};

bool parses_as_u64(const std::string& s) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  (void)std::strtoull(s.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool parses_as_f64(const std::string& s) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0';
}

std::optional<args_map> parse_args(int argc, char** argv, int first,
                                   const arg_spec& spec) {
  args_map out;
  const auto bad = [](const std::string& why) -> std::optional<args_map> {
    std::cerr << "sfg_cli: " << why << "\n";
    return std::nullopt;
  };
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      out.positional.push_back(a);
      continue;
    }
    std::string key = a.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      has_value = true;
    }
    if (key.empty()) return bad("malformed option '" + a + "'");
    if (spec.flags.contains(key)) {
      if (has_value) return bad("flag --" + key + " does not take a value");
      out.flags[key] = true;
      continue;
    }
    if (!spec.options.contains(key)) {
      return bad("unknown option --" + key);
    }
    if (!has_value) {
      if (i + 1 >= argc) return bad("--" + key + " requires a value");
      value = argv[++i];
    }
    if (kU64Options.contains(key) && !parses_as_u64(value)) {
      return bad("--" + key + " expects a non-negative integer, got '" +
                 value + "'");
    }
    if (kF64Options.contains(key) && !parses_as_f64(value)) {
      return bad("--" + key + " expects a number, got '" + value + "'");
    }
    out.options[key] = value;
  }
  return out;
}

bool is_text_path(const std::string& path) {
  return path.size() > 4 && path.substr(path.size() - 4) == ".txt";
}

std::vector<sfg::gen::edge64> load_edges(const std::string& path) {
  return is_text_path(path) ? sfg::io::read_text_edges(path)
                            : sfg::io::read_binary_edges(path);
}

std::vector<sfg::gen::edge64> load_edges_distributed(
    sfg::runtime::comm& c, const std::string& path) {
  return is_text_path(path)
             ? sfg::io::read_text_edges_distributed(c, path)
             : sfg::io::read_binary_edges_distributed(c, path);
}

int usage() {
  std::cerr
      << "usage: sfg_cli <command> [args]\n"
         "  generate --model rmat|pa|sw --scale S [--rewire R] [--seed N]\n"
         "           --out FILE [--text]\n"
         "  info FILE\n"
         "  bfs FILE [--ranks P] [--source GID] [--ghosts K] [--validate]\n"
         "      [--bfs=async|topdown|bottomup|hybrid]  traversal mode:\n"
         "      async (default) is the paper's visitor queue; the others\n"
         "      are level-synchronous with an explicit frontier (hybrid\n"
         "      switches direction on the SFG_BFS_ALPHA/SFG_BFS_BETA\n"
         "      heuristic)\n"
         "  kcore FILE --k K [--ranks P]\n"
         "  triangles FILE [--ranks P] [--approx SAMPLES]\n"
         "  components FILE [--ranks P]\n"
         "  pagerank FILE [--ranks P] [--eps E]\n"
         "algorithm commands also accept:\n"
         "  --partitioner=NAME   edge placement: edge_list (default), dbh,\n"
         "                       hdrf, or sne\n"
         "  --hdrf-lambda L      HDRF balance knob (default 1.0; larger =\n"
         "                       more balance, more replication)\n"
         "  --json-report PATH   write metrics run report when done\n"
         "  --trace PATH         write Chrome-trace/Perfetto timeline\n"
         "  --em                 external-memory mode: adjacency on a\n"
         "                       per-rank block device behind the page\n"
         "                       cache (reports I/O attribution)\n"
         "  --em-frames N        page-cache frames per rank (default 64)\n"
         "  --em-page B          page size in bytes (default 512)\n"
         "  --mem-budget BYTES   soft memory budget: arms the pressure\n"
         "                       ladder and per-subsystem attribution\n"
         "                       (mirrors SFG_MEM_BUDGET)\n";
  return 2;
}

int cmd_generate(const args_map& a) {
  const std::string model = a.opt("model", "rmat");
  const auto scale = static_cast<unsigned>(a.opt_u64("scale", 14));
  const double rewire = a.opt_f64("rewire", 0.0);
  const std::uint64_t seed = a.opt_u64("seed", 1);
  const std::string out = a.opt("out", "");
  if (out.empty()) return usage();

  std::vector<sfg::gen::edge64> edges;
  if (model == "rmat") {
    sfg::gen::rmat_config cfg{.scale = scale, .edge_factor = 16, .seed = seed};
    edges = sfg::gen::rmat_slice(cfg, 0, cfg.num_edges());
  } else if (model == "pa") {
    sfg::gen::pa_config cfg{.num_vertices = std::uint64_t{1} << scale,
                            .edges_per_vertex = 8,
                            .rewire = rewire,
                            .seed = seed};
    edges = sfg::gen::pa_slice(cfg, 0, cfg.num_edges());
  } else if (model == "sw") {
    sfg::gen::sw_config cfg{.num_vertices = std::uint64_t{1} << scale,
                            .degree = 16,
                            .rewire = rewire,
                            .seed = seed};
    edges = sfg::gen::sw_slice(cfg, 0, cfg.num_edges());
  } else {
    return usage();
  }
  if (a.flag("text") || is_text_path(out)) {
    sfg::io::write_text_edges(out, edges);
  } else {
    sfg::io::write_binary_edges(out, edges);
  }
  std::cout << "wrote " << edges.size() << " edges (" << model << ", scale "
            << scale << ") to " << out << "\n";
  return 0;
}

int cmd_info(const args_map& a) {
  if (a.positional.empty()) return usage();
  const auto edges = load_edges(a.positional[0]);
  std::map<std::uint64_t, std::uint64_t> degree;
  std::uint64_t max_v = 0;
  std::uint64_t self_loops = 0;
  for (const auto& e : edges) {
    ++degree[e.src];
    ++degree[e.dst];
    max_v = std::max({max_v, e.src, e.dst});
    if (e.src == e.dst) ++self_loops;
  }
  sfg::util::log2_histogram hist;
  std::uint64_t max_deg = 0;
  for (const auto& [v, d] : degree) {
    hist.add(d);
    max_deg = std::max(max_deg, d);
  }
  std::cout << "edges:       " << edges.size() << "\n"
            << "vertices:    " << degree.size() << " touched (ids up to "
            << max_v << ")\n"
            << "self loops:  " << self_loops << "\n"
            << "max degree:  " << max_deg << "\n"
            << "degree histogram (log2 buckets):\n"
            << hist.to_string();
  return 0;
}

/// The CLI side of the observability switches: --json-report / --trace
/// arm the registry / trace buffer before the run and serialize them
/// after, mirroring the SFG_METRICS / SFG_TRACE environment variables.
struct obs_opts {
  std::string report_path;
  std::string trace_path;

  explicit obs_opts(const args_map& a)
      : report_path(a.opt("json-report", "")),
        trace_path(a.opt("trace", "")) {
    if (!report_path.empty()) sfg::obs::set_metrics_enabled(true);
    if (!trace_path.empty()) sfg::obs::set_trace_enabled(true);
  }

  /// Write whatever was requested; false if a report could not be written.
  bool finish(const std::string& command, const args_map& a,
              const sfg::obs::json* cache_heat = nullptr) const {
    if (!trace_path.empty()) sfg::obs::write_chrome_trace(trace_path);
    if (report_path.empty()) return true;
    sfg::obs::run_report rep(command);
    rep.add_param("file", sfg::obs::json(a.positional.empty()
                                             ? std::string()
                                             : a.positional[0]));
    for (const auto& [key, value] : a.options) {
      rep.add_param(key, sfg::obs::json(value));
    }
    if (cache_heat != nullptr && cache_heat->is_object()) {
      rep.add_section("cache_heat", *cache_heat);
    }
    return rep.write(report_path);
  }
};

template <typename Fn>
int with_graph(const args_map& a, const char* command, std::uint32_t ghosts,
               Fn&& fn) {
  if (a.positional.empty()) return usage();
  const auto path = a.positional[0];
  const int p = static_cast<int>(a.opt_u64("ranks", 4));
  const auto kind =
      sfg::graph::parse_partitioner(a.opt("partitioner", "edge_list"));
  if (!kind.has_value()) {
    std::cerr << "unknown --partitioner '" << a.opt("partitioner", "")
              << "' (expected edge_list, dbh, hdrf, or sne)\n";
    return 2;
  }
  const bool em = a.flag("em");
  const auto em_frames = static_cast<std::size_t>(a.opt_u64("em-frames", 64));
  const auto em_page = static_cast<std::size_t>(a.opt_u64("em-page", 512));
  if (a.options.contains("mem-budget")) {
    // Mirrors SFG_MEM_BUDGET: a nonzero budget also turns attribution on.
    sfg::obs::set_mem_budget(a.opt_u64("mem-budget", 0));
  }
  const obs_opts obs(a);
  int rc = 0;
  sfg::obs::json cache_heat;
  sfg::runtime::launch(p, [&](sfg::runtime::comm& c) {
    auto edges = load_edges_distributed(c, path);
    sfg::graph::graph_build_config gcfg{.num_ghosts = ghosts};
    gcfg.partitioner.kind = *kind;
    gcfg.partitioner.hdrf_lambda = a.opt_f64("hdrf-lambda", 1.0);
    if (em) {
      // Per-rank device + page cache, like the paper's node-local NVRAM;
      // a deliberately small frame budget keeps the miss path exercised.
      sfg::storage::memory_device dev;
      sfg::storage::page_cache cache(dev, {em_page, em_frames});
      auto g =
          sfg::graph::build_external_graph(c, std::move(edges), gcfg, dev,
                                           cache);
      rc = fn(c, g);
      if (c.rank() == 0) {
        // Rank 0's frame heat stands in for all ranks (symmetric caches);
        // lands in both report flavors so sfg_heat can render it.
        cache_heat = cache.heat_json(16);
        sfg::obs::set_metrics_report_section("cache_heat", cache_heat);
      }
    } else {
      auto g = sfg::graph::build_in_memory_graph(c, std::move(edges), gcfg);
      rc = fn(c, g);
    }
  });
  if (!obs.finish(command, a, em ? &cache_heat : nullptr) && rc == 0) rc = 1;
  return rc;
}

int cmd_bfs(const args_map& a) {
  const auto mode = sfg::core::parse_bfs_mode(a.opt("bfs", "async"));
  if (!mode.has_value()) {
    std::cerr << "unknown --bfs '" << a.opt("bfs", "")
              << "' (expected async, topdown, bottomup, or hybrid)\n";
    return 2;
  }
  return with_graph(a, "bfs", static_cast<std::uint32_t>(a.opt_u64("ghosts", 256)),
                    [&](sfg::runtime::comm& c, auto& g) {
    auto source = g.locate(a.opt_u64("source", 0));
    if (!source.valid()) {
      // Fall back to the max-degree vertex (collective choice).
      struct cand {
        std::uint64_t degree;
        std::uint64_t inv_bits;
      };
      cand best{0, 0};
      for (std::size_t s = 0; s < g.num_slots(); ++s) {
        if (!g.is_master(s)) continue;
        const cand x{g.degree_of(s), ~g.locator_of(s).bits()};
        if (x.degree > best.degree ||
            (x.degree == best.degree && x.inv_bits > best.inv_bits)) {
          best = x;
        }
      }
      const auto w = c.all_reduce(best, [](cand l, cand r) {
        if (l.degree != r.degree) return l.degree > r.degree ? l : r;
        return l.inv_bits > r.inv_bits ? l : r;
      });
      source = sfg::graph::vertex_locator::from_bits(~w.inv_bits);
    }
    sfg::util::timer t;
    sfg::core::hybrid_bfs_config bcfg;
    bcfg.mode = *mode;
    auto bfs = sfg::core::run_bfs_mode(g, source, bcfg);
    const double secs = t.elapsed_s();
    std::uint64_t reached = 0;
    std::uint64_t traversed = 0;
    for (std::size_t s = 0; s < g.num_slots(); ++s) {
      if (g.is_master(s) && bfs.state.local(s).reached()) {
        ++reached;
        traversed += g.degree_of(s);
      }
    }
    reached = c.all_reduce(reached, std::plus<>());
    traversed = c.all_reduce(traversed, std::plus<>()) / 2;
    int rc = 0;
    if (c.rank() == 0) {
      std::cout << "bfs[" << sfg::core::bfs_mode_name(*mode) << "]: reached "
                << reached << " of " << g.total_vertices()
                << " vertices in " << secs << " s ("
                << (secs > 0 ? static_cast<double>(traversed) / secs / 1e6
                             : 0)
                << " MTEPS)\n";
      if (*mode != sfg::core::bfs_mode::async) {
        std::cout << "levels: " << bfs.levels.size()
                  << ", direction switch at "
                  << bfs.direction_switch_level << "\n";
      }
    }
    if (a.flag("validate")) {
      const auto v = sfg::core::validate_bfs(g, source, bfs.state, {});
      if (c.rank() == 0) {
        std::cout << "validation: " << (v.valid ? "PASSED" : "FAILED")
                  << " (" << v.tree_edges_found << "/"
                  << v.tree_edges_expected << " tree edges)\n";
      }
      if (!v.valid) rc = 1;
    }
    return rc;
  });
}

int cmd_kcore(const args_map& a) {
  const auto k = static_cast<std::uint32_t>(a.opt_u64("k", 2));
  return with_graph(a, "kcore", 0, [&](sfg::runtime::comm& c, auto& g) {
    sfg::util::timer t;
    auto result = sfg::core::run_kcore(g, k, {});
    if (c.rank() == 0) {
      std::cout << k << "-core: " << result.core_size << " of "
                << g.total_vertices() << " vertices (" << t.elapsed_s()
                << " s)\n";
    }
    return 0;
  });
}

int cmd_triangles(const args_map& a) {
  const auto approx = a.opt_u64("approx", 0);
  return with_graph(a, "triangles", 0, [&](sfg::runtime::comm& c, auto& g) {
    sfg::util::timer t;
    if (approx > 0) {
      const auto est = sfg::core::approx_triangle_count(g, approx, 7);
      if (c.rank() == 0) {
        std::cout << "triangles ~ " << est.estimated_triangles << " ("
                  << est.samples << " wedge samples, " << t.elapsed_s()
                  << " s)\n";
      }
    } else {
      const auto exact = sfg::core::run_triangle_count(g, {});
      if (c.rank() == 0) {
        std::cout << "triangles = " << exact.total_triangles << " ("
                  << t.elapsed_s() << " s)\n";
      }
    }
    return 0;
  });
}

int cmd_components(const args_map& a) {
  return with_graph(a, "components", 64, [&](sfg::runtime::comm& c, auto& g) {
    sfg::util::timer t;
    auto result = sfg::core::run_connected_components(g, {});
    if (c.rank() == 0) {
      std::cout << "components: " << result.num_components << " ("
                << t.elapsed_s() << " s)\n";
    }
    return 0;
  });
}

int cmd_pagerank(const args_map& a) {
  const double eps = a.opt_f64("eps", 1e-6);
  return with_graph(a, "pagerank", 0, [&](sfg::runtime::comm& c, auto& g) {
    sfg::util::timer t;
    auto result = sfg::core::run_pagerank(g, 0.85, eps, {});
    // Top-5 by rank (gathered).
    struct kv {
      double rank;
      std::uint64_t gid;
    };
    std::vector<kv> mine;
    for (std::size_t s = 0; s < g.num_slots(); ++s) {
      if (g.is_master(s)) {
        mine.push_back({result.state.local(s).rank, g.global_id_of(s)});
      }
    }
    auto all = c.all_gatherv(std::span<const kv>(mine), nullptr);
    std::sort(all.begin(), all.end(),
              [](const kv& x, const kv& y) { return x.rank > y.rank; });
    if (c.rank() == 0) {
      std::cout << "pagerank: total mass " << result.total_mass << " / "
                << g.total_vertices() << " (" << t.elapsed_s() << " s)\n";
      for (std::size_t i = 0; i < std::min<std::size_t>(5, all.size());
           ++i) {
        std::cout << "  #" << i + 1 << "  vertex " << all[i].gid
                  << "  rank " << all[i].rank << "\n";
      }
    }
    return 0;
  });
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Every algorithm command shares the placement + observability +
  // external-memory surface; each adds its own knobs on top.
  arg_spec spec{{"ranks", "partitioner", "hdrf-lambda", "json-report",
                 "trace", "em-frames", "em-page", "mem-budget"},
                {"em"}};
  if (cmd == "generate") {
    spec = {{"model", "scale", "rewire", "seed", "out"}, {"text"}};
  } else if (cmd == "info") {
    spec = {{}, {}};
  } else if (cmd == "bfs") {
    spec.options.insert({"source", "ghosts", "bfs"});
    spec.flags.insert("validate");
  } else if (cmd == "kcore") {
    spec.options.insert("k");
  } else if (cmd == "triangles") {
    spec.options.insert("approx");
  } else if (cmd == "components" || cmd == "pagerank") {
    if (cmd == "pagerank") spec.options.insert("eps");
  } else {
    return usage();
  }
  const auto a = parse_args(argc, argv, 2, spec);
  if (!a) return usage();
  if (cmd == "generate") return cmd_generate(*a);
  if (cmd == "info") return cmd_info(*a);
  if (cmd == "bfs") return cmd_bfs(*a);
  if (cmd == "kcore") return cmd_kcore(*a);
  if (cmd == "triangles") return cmd_triangles(*a);
  if (cmd == "components") return cmd_components(*a);
  return cmd_pagerank(*a);
}
