/// \file sfg_heat.cpp
/// Terminal heat-map for data movement — the comm-side sibling of
/// sfg_top.  Two sources:
///
///   Report mode (--report FILE): an sfg-metrics/1 report whose traversal
///   entries carry sfg-comm-matrix/1 sections (SFG_METRICS +
///   SFG_COMM_MATRIX, as the 4-rank CI BFS produces).  Renders, for the
///   last traversal with a matrix:
///     - the rank x rank sent-bytes matrix as a glyph-ramp heat grid,
///       flagging the hottest origin->dest pair
///     - enqueue->deliver latency quantiles per rank (sampled, log2)
///     - page-cache amplification from the registry snapshot: device
///       bytes moved vs caller bytes requested, plus read/write/fault
///       latency quantiles and eviction causes
///     - hottest frames when the report has a "cache_heat" section
///       (page_cache::heat_json)
///
///   Live mode (--dir DIR): tails the per-rank sfg-timeseries/1 JSONL
///   streams (SFG_TS_DIR) and renders transport and I/O byte rates with
///   live read amplification — no matrix (the streams carry scalars), but
///   enough to see *that* data movement is the bottleneck before
///   re-running with SFG_METRICS for the full picture.
///
///   sfg_heat [--report FILE] [--dir DIR] [--interval MS] [--once] [--top N]
///
///     --once   render one snapshot and exit: 0 if something valid was
///              rendered, 1 on a missing/empty/invalid source (CI gate)
///
/// Precedence: --report wins when both are given; with neither, live mode
/// on $SFG_TS_DIR (else ".").
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace {

using sfg::obs::json;

/// Ten-step intensity ramp; index 0 is "no traffic".
constexpr const char* kRamp = " .:-=+*#%@";

bool has_key(const json& obj, std::string_view key) {
  return obj.is_object() && obj.find(key) != nullptr;
}

double num_or(const json& obj, const char* key, double fallback) {
  const json* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

std::string human_bytes(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fGB", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fMB", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fkB", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fB", v);
  }
  return buf;
}

std::string human_rate(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Report mode
// ---------------------------------------------------------------------------

/// Extract a square u64 matrix[origin][dest] from the comm_matrix rows.
bool load_rows(const json& rows, const char* key, std::size_t n,
               std::vector<std::vector<std::uint64_t>>& out) {
  out.clear();
  for (std::size_t r = 0; r < n; ++r) {
    const json* arr = rows.at(r).find(key);
    if (arr == nullptr || !arr->is_array() || arr->size() != n) return false;
    std::vector<std::uint64_t> vals;
    for (std::size_t c = 0; c < n; ++c) {
      if (!arr->at(c).is_number()) return false;
      vals.push_back(arr->at(c).as_u64());
    }
    out.push_back(std::move(vals));
  }
  return true;
}

void render_matrix(const std::vector<std::vector<std::uint64_t>>& m) {
  const std::size_t n = m.size();
  std::uint64_t max_v = 0;
  std::uint64_t total = 0;
  std::size_t hot_o = 0, hot_d = 0;
  std::uint64_t hot_v = 0;
  for (std::size_t o = 0; o < n; ++o) {
    for (std::size_t d = 0; d < n; ++d) {
      max_v = std::max(max_v, m[o][d]);
      total += m[o][d];
      if (o != d && m[o][d] > hot_v) {
        hot_v = m[o][d];
        hot_o = o;
        hot_d = d;
      }
    }
  }
  std::printf("rank x rank sent bytes (row = origin, col = final dest, "
              "total %s, cell max %s)\n",
              human_bytes(static_cast<double>(total)).c_str(),
              human_bytes(static_cast<double>(max_v)).c_str());
  std::printf("      ");
  for (std::size_t d = 0; d < n; ++d) std::printf("%2zu", d % 100);
  std::printf("\n");
  for (std::size_t o = 0; o < n; ++o) {
    std::printf("  %3zu ", o);
    for (std::size_t d = 0; d < n; ++d) {
      char g = ' ';
      if (max_v > 0 && m[o][d] > 0) {
        const std::size_t level = 1 + static_cast<std::size_t>(
                                          static_cast<double>(m[o][d]) /
                                          static_cast<double>(max_v) * 8.0);
        g = kRamp[std::min<std::size_t>(level, 9)];
      }
      std::printf(" %c", g);
    }
    std::printf("\n");
  }
  if (hot_v > 0) {
    std::printf("hottest pair: rank %zu -> rank %zu, %s\n", hot_o, hot_d,
                human_bytes(static_cast<double>(hot_v)).c_str());
  } else {
    std::printf("hottest pair: none (all off-diagonal traffic is zero)\n");
  }
}

void render_latency(const json& rows, std::size_t n) {
  std::uint64_t count = 0;
  double p50_max = 0, p90_max = 0, p99_max = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const json* h = rows.at(r).find("latency_us");
    if (h == nullptr || !h->is_object()) continue;
    count += static_cast<std::uint64_t>(num_or(*h, "count", 0));
    p50_max = std::max(p50_max, num_or(*h, "p50", 0));
    p90_max = std::max(p90_max, num_or(*h, "p90", 0));
    p99_max = std::max(p99_max, num_or(*h, "p99", 0));
  }
  if (count == 0) {
    std::printf("enqueue->deliver latency: no samples "
                "(SFG_COMM_LAT_SAMPLE=0?)\n");
    return;
  }
  // Quantiles are log2-bucket upper bounds; max over ranks is the
  // conservative whole-world read.
  std::printf("enqueue->deliver latency: %llu samples, worst-rank p50 %.0fus "
              "p90 %.0fus p99 %.0fus\n",
              static_cast<unsigned long long>(count), p50_max, p90_max,
              p99_max);
}

void render_cache(const json& doc) {
  const json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return;
  const json* counters = metrics->find("counters");
  if (counters == nullptr || !counters->is_object()) return;
  const double req = num_or(*counters, "cache.bytes_requested", 0);
  const double dev_rd = num_or(*counters, "cache.dev_bytes_read", 0);
  const double dev_wr = num_or(*counters, "cache.dev_bytes_written", 0);
  const double hits = num_or(*counters, "cache.hits", 0);
  const double misses = num_or(*counters, "cache.misses", 0);
  if (req + dev_rd + dev_wr + hits + misses == 0) {
    std::printf("page cache: no activity recorded\n");
    return;
  }
  std::printf("page cache: %s requested, %s device-read, %s device-written",
              human_bytes(req).c_str(), human_bytes(dev_rd).c_str(),
              human_bytes(dev_wr).c_str());
  if (req > 0) {
    std::printf(" | read-amp %.2fx write-amp %.2fx", dev_rd / req,
                dev_wr / req);
  }
  std::printf("\n");
  if (hits + misses > 0) {
    std::printf("            %.0f hits / %.0f misses (%.1f%% hit rate)\n",
                hits, misses, 100.0 * hits / (hits + misses));
  }
  if (const json* h = metrics->find("histograms");
      h != nullptr && h->is_object()) {
    for (const char* name :
         {"cache.read_us", "cache.write_us", "cache.fault_us"}) {
      const json* hist = h->find(name);
      if (hist == nullptr || !hist->is_object() ||
          num_or(*hist, "count", 0) == 0) {
        continue;
      }
      std::printf("            %-14s p50 %.0fus p90 %.0fus p99 %.0fus "
                  "(%.0f ops)\n",
                  name, num_or(*hist, "p50", 0), num_or(*hist, "p90", 0),
                  num_or(*hist, "p99", 0), num_or(*hist, "count", 0));
    }
  }
}

void render_frames(const json& doc, std::size_t top_n) {
  const json* heat = doc.find("cache_heat");
  if (heat == nullptr || !heat->is_object()) return;
  const json* top = heat->find("top");
  if (top == nullptr || !top->is_array() || top->size() == 0) return;
  std::printf("hottest frames (%.0f of %.0f touched):\n",
              static_cast<double>(std::min<std::size_t>(top->size(), top_n)),
              num_or(*heat, "touched", 0));
  for (std::size_t i = 0; i < top->size() && i < top_n; ++i) {
    const json& f = top->at(i);
    std::printf("  frame %6.0f  page %8.0f  %10.0f touches\n",
                num_or(f, "frame", 0), num_or(f, "page", 0),
                num_or(f, "touches", 0));
  }
}

/// Returns true if something valid was rendered.
bool render_report(const std::string& file, std::size_t top_n) {
  std::ifstream in(file);
  if (!in) {
    std::cerr << "sfg_heat: cannot open " << file << "\n";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = json::parse(ss.str());
  if (!doc || !doc->is_object()) {
    std::cerr << "sfg_heat: " << file << " is not valid JSON\n";
    return false;
  }
  if (!has_key(*doc, "schema") ||
      !(*doc->find("schema") == json("sfg-metrics/1"))) {
    std::cerr << "sfg_heat: " << file << " is not an sfg-metrics/1 report\n";
    return false;
  }
  const json* traversals = doc->find("traversals");
  if (traversals == nullptr || !traversals->is_array() ||
      traversals->size() == 0) {
    std::cerr << "sfg_heat: " << file << " has no traversals\n";
    return false;
  }
  // Last traversal with a matrix: the freshest cumulative snapshot.
  const json* cm = nullptr;
  std::size_t which = 0;
  for (std::size_t i = 0; i < traversals->size(); ++i) {
    if (const json* c = traversals->at(i).find("comm_matrix");
        c != nullptr && c->is_object()) {
      cm = c;
      which = i;
    }
  }
  if (cm == nullptr) {
    std::cerr << "sfg_heat: " << file
              << " has no comm_matrix section (set SFG_COMM_MATRIX or "
                 "SFG_METRICS)\n";
    return false;
  }
  const std::size_t n = static_cast<std::size_t>(num_or(*cm, "ranks", 0));
  const json* rows = cm->find("rows");
  if (n == 0 || rows == nullptr || !rows->is_array() || rows->size() != n) {
    std::cerr << "sfg_heat: " << file << " comm_matrix is malformed\n";
    return false;
  }
  std::vector<std::vector<std::uint64_t>> sent_bytes;
  if (!load_rows(*rows, "sent_bytes", n, sent_bytes)) {
    std::cerr << "sfg_heat: " << file
              << " comm_matrix sent_bytes is not square\n";
    return false;
  }
  std::printf("sfg_heat — %s, traversal %zu of %zu, %zu rank(s)\n",
              file.c_str(), which + 1, traversals->size(), n);
  render_matrix(sent_bytes);
  render_latency(*rows, n);
  render_cache(*doc);
  render_frames(*doc, top_n);
  std::fflush(stdout);
  return true;
}

// ---------------------------------------------------------------------------
// Live mode (sfg-timeseries/1 streams)
// ---------------------------------------------------------------------------

struct live_row {
  int rank = 0;
  double comm_bytes = 0;
  double pkt_bytes = 0;
  double req_bytes = 0;
  double dev_read = 0;
  double dev_write = 0;
};

std::optional<live_row> read_live_file(const std::filesystem::path& p,
                                       int rank) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  std::string line;
  std::optional<json> last;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = json::parse(line);
    if (parsed && parsed->is_object()) last = std::move(*parsed);
  }
  if (!last) return std::nullopt;
  const json* schema = last->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "sfg-timeseries/1") {
    return std::nullopt;
  }
  live_row r;
  r.rank = rank;
  if (const json* ra = last->find("rates"); ra != nullptr && ra->is_object()) {
    r.comm_bytes = num_or(*ra, "comm_bytes_sent", 0);
    r.pkt_bytes = num_or(*ra, "packet_bytes_sent", 0);
    r.req_bytes = num_or(*ra, "bytes_requested", 0);
    r.dev_read = num_or(*ra, "dev_bytes_read", 0);
    r.dev_write = num_or(*ra, "dev_bytes_written", 0);
  }
  return r;
}

std::vector<live_row> collect_live(const std::string& dir) {
  std::vector<live_row> rows;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "sfg_ts_rank";
    constexpr std::string_view suffix = ".jsonl";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string mid =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    char* end = nullptr;
    const long rank = std::strtol(mid.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;
    if (auto row = read_live_file(entry.path(), static_cast<int>(rank))) {
      rows.push_back(*row);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const live_row& a, const live_row& b) { return a.rank < b.rank; });
  return rows;
}

void render_live(const std::vector<live_row>& rows, const std::string& dir) {
  // Rates come from process-wide counters; one rank's freshest sample is
  // the whole world's rate, so take the max across ranks.
  double comm = 0, pkt = 0, req = 0, dev_rd = 0, dev_wr = 0;
  for (const auto& r : rows) {
    comm = std::max(comm, r.comm_bytes);
    pkt = std::max(pkt, r.pkt_bytes);
    req = std::max(req, r.req_bytes);
    dev_rd = std::max(dev_rd, r.dev_read);
    dev_wr = std::max(dev_wr, r.dev_write);
  }
  std::printf("sfg_heat (live) — %zu rank(s), dir %s\n", rows.size(),
              dir.c_str());
  std::printf("transport: comm payload %sB/s, mailbox wire %sB/s",
              human_rate(comm).c_str(), human_rate(pkt).c_str());
  if (comm > 0 && pkt > 0) std::printf(" (amp %.2fx)", pkt / comm);
  std::printf("\n");
  std::printf("storage:   requested %sB/s, device read %sB/s, device write "
              "%sB/s",
              human_rate(req).c_str(), human_rate(dev_rd).c_str(),
              human_rate(dev_wr).c_str());
  if (req > 0 && dev_rd > 0) std::printf(" (read-amp %.2fx)", dev_rd / req);
  std::printf("\n");
  std::fflush(stdout);
}

int usage() {
  std::cerr << "usage: sfg_heat [--report FILE] [--dir DIR] [--interval MS] "
               "[--once] [--top N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report;
  std::string dir;
  if (const char* env = std::getenv("SFG_TS_DIR"); env != nullptr && *env) {
    dir = env;
  } else {
    dir = ".";
  }
  long interval_ms = 500;
  std::size_t top_n = 8;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--once") {
      once = true;
    } else if (a == "--report" && i + 1 < argc) {
      report = argv[++i];
    } else if (a == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (a == "--interval" && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
      if (interval_ms <= 0) interval_ms = 500;
    } else if (a == "--top" && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (top_n == 0) top_n = 8;
    } else {
      return usage();
    }
  }

  if (!report.empty()) {
    // A report is a finished artifact: render once regardless of --once.
    return render_report(report, top_n) ? 0 : 1;
  }

  for (;;) {
    const std::vector<live_row> rows = collect_live(dir);
    if (once) {
      if (rows.empty()) {
        std::cerr << "sfg_heat: no sfg_ts_rank*.jsonl samples in " << dir
                  << "\n";
        return 1;
      }
      render_live(rows, dir);
      return 0;
    }
    std::printf("\033[2J\033[H");  // clear + home
    if (rows.empty()) {
      std::printf("sfg_heat: waiting for sfg_ts_rank*.jsonl in %s ...\n",
                  dir.c_str());
      std::fflush(stdout);
    } else {
      render_live(rows, dir);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
