/// \file sfg_mem.cpp
/// Terminal memory-attribution view — the DRAM-side sibling of sfg_top
/// and sfg_heat.  Two sources:
///
///   Report mode (--report FILE): an sfg-metrics/1 report whose traversal
///   entries carry sfg-mem/1 sections (SFG_MEM / SFG_MEM_BUDGET +
///   SFG_METRICS).  Renders, for the last traversal with a section:
///     - one stacked bar per rank: each charged subsystem's share of the
///       rank's accounted bytes, with a peak watermark ('|') where the
///       rank's accounted peak sits relative to the widest rank
///     - a per-subsystem legend with current / peak bytes summed over
///       ranks, sorted by peak
///     - the ground-truth line: accounted peak vs sampled RSS growth
///       (the coverage ratio), max-RSS, and the budget if one was armed
///     - the pressure block: current ladder level and how many ok->soft,
///       soft->hard, ->ok transitions fired
///
///   Live mode (--dir DIR): tails the per-rank sfg-timeseries/1 JSONL
///   streams (SFG_TS_DIR) and renders each rank's freshest accounted
///   bytes against its sampled RSS — enough to watch a budget bite in
///   real time; re-run with SFG_METRICS for the per-subsystem split.
///
///   sfg_mem [--report FILE] [--dir DIR] [--interval MS] [--once]
///
///     --once   render one snapshot and exit: 0 if something valid was
///              rendered, 1 on a missing/empty/invalid source (CI gate)
///
/// Precedence: --report wins when both are given; with neither, live mode
/// on $SFG_TS_DIR (else ".").
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/mem.hpp"

namespace {

using sfg::obs::json;

/// One fill glyph per subsystem, in enum order — the bar is a legend key.
constexpr char kFill[] = {'M', 'C', 'Q', 'F', 'B', 'P', 'o', '.'};
static_assert(sizeof(kFill) == sfg::obs::kMemSubsystems);

bool has_key(const json& obj, std::string_view key) {
  return obj.is_object() && obj.find(key) != nullptr;
}

double num_or(const json& obj, const char* key, double fallback) {
  const json* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

std::string human_bytes(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fGB", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fMB", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fkB", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fB", v);
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Report mode
// ---------------------------------------------------------------------------

struct rank_mem {
  std::uint64_t rank = 0;
  double current[sfg::obs::kMemSubsystems] = {};
  double peak[sfg::obs::kMemSubsystems] = {};
  double accounted_current = 0;
  double accounted_peak = 0;
};

void render_rows(const std::vector<rank_mem>& rows) {
  constexpr int kBarWidth = 48;
  double scale_max = 0;
  for (const auto& r : rows) {
    scale_max = std::max(scale_max, std::max(r.accounted_current,
                                             r.accounted_peak));
  }
  std::printf("per-rank accounted bytes (bar = current by subsystem, '|' = "
              "peak watermark, scale %s)\n",
              human_bytes(scale_max).c_str());
  for (const auto& r : rows) {
    char bar[kBarWidth + 1];
    for (int i = 0; i < kBarWidth; ++i) bar[i] = ' ';
    bar[kBarWidth] = '\0';
    if (scale_max > 0) {
      // Stack the subsystems left to right; every nonzero share gets at
      // least one cell so small-but-present charges stay visible.
      int pos = 0;
      for (std::size_t s = 0; s < sfg::obs::kMemSubsystems; ++s) {
        if (r.current[s] <= 0) continue;
        int cells = static_cast<int>(r.current[s] / scale_max * kBarWidth);
        cells = std::max(cells, 1);
        for (int i = 0; i < cells && pos < kBarWidth; ++i) bar[pos++] = kFill[s];
      }
      const int mark = std::min(
          kBarWidth - 1,
          static_cast<int>(r.accounted_peak / scale_max * kBarWidth));
      if (bar[mark] == ' ') bar[mark] = '|';
    }
    std::printf("  rank %3llu [%s] %9s cur / %9s peak\n",
                static_cast<unsigned long long>(r.rank), bar,
                human_bytes(r.accounted_current).c_str(),
                human_bytes(r.accounted_peak).c_str());
  }
}

void render_legend(const std::vector<rank_mem>& rows) {
  struct line {
    std::size_t s;
    double current;
    double peak;
  };
  std::vector<line> lines;
  for (std::size_t s = 0; s < sfg::obs::kMemSubsystems; ++s) {
    double cur = 0, pk = 0;
    for (const auto& r : rows) {
      cur += r.current[s];
      pk += r.peak[s];
    }
    if (pk > 0) lines.push_back({s, cur, pk});
  }
  std::sort(lines.begin(), lines.end(),
            [](const line& a, const line& b) { return a.peak > b.peak; });
  if (lines.empty()) {
    std::printf("subsystems: nothing charged (all-zero ledger)\n");
    return;
  }
  std::printf("subsystems (all ranks, sorted by peak):\n");
  for (const auto& l : lines) {
    std::printf("  %c %-18s %9s cur / %9s peak\n", kFill[l.s],
                sfg::obs::mem_subsystem_name(
                    static_cast<sfg::obs::mem_subsystem>(l.s)),
                human_bytes(l.current).c_str(), human_bytes(l.peak).c_str());
  }
}

/// Returns true if something valid was rendered.
bool render_report(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    std::cerr << "sfg_mem: cannot open " << file << "\n";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = json::parse(ss.str());
  if (!doc || !doc->is_object()) {
    std::cerr << "sfg_mem: " << file << " is not valid JSON\n";
    return false;
  }
  if (!has_key(*doc, "schema") ||
      !(*doc->find("schema") == json("sfg-metrics/1"))) {
    std::cerr << "sfg_mem: " << file << " is not an sfg-metrics/1 report\n";
    return false;
  }
  const json* traversals = doc->find("traversals");
  if (traversals == nullptr || !traversals->is_array() ||
      traversals->size() == 0) {
    std::cerr << "sfg_mem: " << file << " has no traversals\n";
    return false;
  }
  // Last traversal with a section: the freshest cumulative snapshot.
  const json* mem = nullptr;
  std::size_t which = 0;
  for (std::size_t i = 0; i < traversals->size(); ++i) {
    if (const json* m = traversals->at(i).find("mem");
        m != nullptr && m->is_object()) {
      mem = m;
      which = i;
    }
  }
  if (mem == nullptr) {
    std::cerr << "sfg_mem: " << file
              << " has no mem section (set SFG_MEM or SFG_MEM_BUDGET "
                 "alongside SFG_METRICS)\n";
    return false;
  }
  std::vector<std::string> errors;
  if (!sfg::obs::mem_validate(*mem, &errors)) {
    std::cerr << "sfg_mem: " << file << " mem section is invalid\n";
    for (const std::string& e : errors) std::cerr << "  " << e << "\n";
    return false;
  }
  const json& jrows = *mem->find("rows");
  std::vector<rank_mem> rows;
  for (std::size_t r = 0; r < jrows.size(); ++r) {
    const json& row = jrows.at(r);
    rank_mem rm;
    rm.rank = static_cast<std::uint64_t>(num_or(row, "rank", 0));
    rm.accounted_current = num_or(row, "accounted_current", 0);
    rm.accounted_peak = num_or(row, "accounted_peak", 0);
    const json& subs = *row.find("subsystems");
    for (std::size_t s = 0; s < sfg::obs::kMemSubsystems; ++s) {
      const json* sub = subs.find(sfg::obs::mem_subsystem_name(
          static_cast<sfg::obs::mem_subsystem>(s)));
      rm.current[s] = num_or(*sub, "current", 0);
      rm.peak[s] = num_or(*sub, "peak", 0);
    }
    rows.push_back(rm);
  }

  std::printf("sfg_mem — %s, traversal %zu of %zu, %zu rank(s)\n",
              file.c_str(), which + 1, traversals->size(), rows.size());
  render_rows(rows);
  render_legend(rows);

  const double budget = num_or(*mem, "budget", 0);
  const double accounted_peak = num_or(*mem, "accounted_peak", 0);
  const double rss = num_or(*mem, "rss_bytes", 0);
  const double max_rss = num_or(*mem, "max_rss_bytes", 0);
  const double coverage = num_or(*mem, "coverage", 0);
  std::printf("ground truth: accounted peak %s, rss %s, max-rss %s, "
              "coverage %.0f%%",
              human_bytes(accounted_peak).c_str(), human_bytes(rss).c_str(),
              human_bytes(max_rss).c_str(), coverage * 100.0);
  if (budget > 0) {
    std::printf(", budget %s", human_bytes(budget).c_str());
  } else {
    std::printf(", no budget armed");
  }
  std::printf("\n");

  const json* pressure = mem->find("pressure");
  if (pressure != nullptr && pressure->is_object()) {
    const json* level = pressure->find("level");
    std::printf("pressure: level %s, %.0f ok->soft, %.0f ->hard, %.0f ->ok\n",
                (level != nullptr && level->is_string())
                    ? level->as_string().c_str()
                    : "?",
                num_or(*pressure, "to_soft", 0),
                num_or(*pressure, "to_hard", 0),
                num_or(*pressure, "to_ok", 0));
  }
  std::fflush(stdout);
  return true;
}

// ---------------------------------------------------------------------------
// Live mode (sfg-timeseries/1 streams)
// ---------------------------------------------------------------------------

struct live_row {
  int rank = 0;
  double accounted = 0;
  double rss = 0;
};

std::optional<live_row> read_live_file(const std::filesystem::path& p,
                                       int rank) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  std::string line;
  std::optional<json> last;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = json::parse(line);
    if (parsed && parsed->is_object()) last = std::move(*parsed);
  }
  if (!last) return std::nullopt;
  const json* schema = last->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "sfg-timeseries/1") {
    return std::nullopt;
  }
  live_row r;
  r.rank = rank;
  if (const json* g = last->find("gauges"); g != nullptr && g->is_object()) {
    r.accounted = num_or(*g, "mem_accounted_bytes", 0);
    r.rss = num_or(*g, "mem_rss_bytes", 0);
  }
  return r;
}

std::vector<live_row> collect_live(const std::string& dir) {
  std::vector<live_row> rows;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "sfg_ts_rank";
    constexpr std::string_view suffix = ".jsonl";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string mid =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    char* end = nullptr;
    const long rank = std::strtol(mid.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;
    if (auto row = read_live_file(entry.path(), static_cast<int>(rank))) {
      rows.push_back(*row);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const live_row& a, const live_row& b) { return a.rank < b.rank; });
  return rows;
}

void render_live(const std::vector<live_row>& rows, const std::string& dir,
                 double budget) {
  std::printf("sfg_mem (live) — %zu rank(s), dir %s", rows.size(),
              dir.c_str());
  if (budget > 0) std::printf(", budget %s", human_bytes(budget).c_str());
  std::printf("\n");
  for (const auto& r : rows) {
    std::printf("  rank %3d  accounted %9s  rss %9s", r.rank,
                human_bytes(r.accounted).c_str(), human_bytes(r.rss).c_str());
    if (r.rss > 0) std::printf("  (%.0f%% covered)", 100.0 * r.accounted / r.rss);
    if (budget > 0 && r.accounted >= budget) std::printf("  OVER BUDGET");
    std::printf("\n");
  }
  std::fflush(stdout);
}

int usage() {
  std::cerr << "usage: sfg_mem [--report FILE] [--dir DIR] [--interval MS] "
               "[--once]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report;
  std::string dir;
  if (const char* env = std::getenv("SFG_TS_DIR"); env != nullptr && *env) {
    dir = env;
  } else {
    dir = ".";
  }
  double budget = 0;
  if (const char* env = std::getenv("SFG_MEM_BUDGET");
      env != nullptr && *env) {
    budget = std::strtod(env, nullptr);
  }
  long interval_ms = 500;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--once") {
      once = true;
    } else if (a == "--report" && i + 1 < argc) {
      report = argv[++i];
    } else if (a == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (a == "--interval" && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
      if (interval_ms <= 0) interval_ms = 500;
    } else {
      return usage();
    }
  }

  if (!report.empty()) {
    // A report is a finished artifact: render once regardless of --once.
    return render_report(report) ? 0 : 1;
  }

  for (;;) {
    const std::vector<live_row> rows = collect_live(dir);
    if (once) {
      if (rows.empty()) {
        std::cerr << "sfg_mem: no sfg_ts_rank*.jsonl samples in " << dir
                  << "\n";
        return 1;
      }
      render_live(rows, dir, budget);
      return 0;
    }
    std::printf("\033[2J\033[H");  // clear + home
    if (rows.empty()) {
      std::printf("sfg_mem: waiting for sfg_ts_rank*.jsonl in %s ...\n",
                  dir.c_str());
      std::fflush(stdout);
    } else {
      render_live(rows, dir, budget);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
