/// \file sfg_report_check.cpp
/// Validator for the observability output formats — CI fails a bench job
/// when a report is missing or malformed, instead of silently uploading
/// broken artifacts.
///
///   sfg_report_check [--bench FILE]... [--report FILE]... [--trace FILE]...
///                    [--flight FILE]... [--timeseries FILE]...
///
///   --bench   BENCH_*.json from bench/bench_common.hpp's reporter:
///             run-report schema + bench section (wall_time_s, tables)
///   --report  a run report (sfg-run-report/1, from sfg_cli --json-report)
///             or a metrics report (sfg-metrics/1, from SFG_METRICS)
///   --trace   Chrome-trace JSON from SFG_TRACE / --trace.  Flow events
///             ('s'/'t'/'f') must carry an "id"; when any are present, at
///             least one flow id must have both its start and its end — a
///             complete sampled visitor chain.
///   --flight  flight-recorder dump (sfg-flight/1, from SFG_FLIGHT_DUMP /
///             the chaos harness / a rank fault)
///   --timeseries  per-rank sfg-timeseries/1 JSONL from SFG_TS_INTERVAL_MS
///             (obs/timeseries.hpp): schema tags, strictly monotonic
///             seq/ts_us, non-negative rates, phase fractions summing to
///             at most 1, and at least one sample
///   --comm-matrix  an sfg-metrics/1 report whose traversal entries carry
///             sfg-comm-matrix/1 rank x rank traffic matrices: square,
///             non-negative, row sums matching the embedded counter
///             totals, self-delivery on the diagonal, and transpose
///             conservation (sent toward d == delivered from o)
///   --bfs-levels  an sfg-metrics/1 report whose traversal entries carry
///             "bfs" direction traces (from sfg_cli bfs
///             --bfs=topdown|bottomup|hybrid): mode tag, α/β knobs,
///             per-level direction records, and a direction_switch_level
///             equal to the first bottom-up level (or -1)
///   --critpath  an sfg-metrics/1 report whose traversal entries carry
///             sfg-critpath/1 critical-path sections (from SFG_SPANS):
///             delegates to obs::critpath_validate — connected
///             start→finish segment chain, blame fractions summing to at
///             most 1.0 of the measured wall and covering >= 90% of it
///   --mem     an sfg-metrics/1 report whose traversal entries carry
///             sfg-mem/1 memory-attribution sections (from SFG_MEM /
///             SFG_MEM_BUDGET): delegates to obs::mem_validate — one row
///             per rank with all subsystems, peak >= current everywhere,
///             per-row and section accounted totals summing exactly, a
///             positive RSS sample, and a well-formed pressure block
///   --all     umbrella: sniff each file's schema and run every validator
///             that applies (metrics reports additionally get the
///             comm-matrix / bfs-levels / critpath checks for whichever
///             sections are present)
///
/// Exit status: 0 if every file validates, 1 otherwise (with one line per
/// problem on stderr).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "obs/mem.hpp"
#include "obs/timeseries.hpp"

namespace {

using sfg::obs::json;

int g_failures = 0;

void fail(const std::string& file, const std::string& why) {
  std::cerr << "sfg_report_check: " << file << ": " << why << "\n";
  ++g_failures;
}

/// Load + parse, or record a failure and return nullopt.
std::optional<json> load(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    fail(file, "cannot open");
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  auto parsed = json::parse(ss.str());
  if (!parsed) fail(file, "not valid JSON");
  return parsed;
}

bool has_key(const json& obj, std::string_view key) {
  return obj.is_object() && obj.find(key) != nullptr;
}

/// Shared between --report and --bench: the sfg-run-report/1 envelope.
bool check_run_report_envelope(const std::string& file, const json& doc) {
  if (!has_key(doc, "schema") ||
      !(*doc.find("schema") == json("sfg-run-report/1"))) {
    fail(file, "schema is not \"sfg-run-report/1\"");
    return false;
  }
  bool ok = true;
  if (!has_key(doc, "name") || !doc.find("name")->is_string()) {
    fail(file, "missing string \"name\"");
    ok = false;
  }
  if (!has_key(doc, "metrics") || !doc.find("metrics")->is_object()) {
    fail(file, "missing object \"metrics\"");
    ok = false;
  } else {
    const json& m = *doc.find("metrics");
    for (const char* section : {"counters", "gauges", "timers"}) {
      if (!has_key(m, section)) {
        fail(file, std::string("metrics missing \"") + section + "\"");
        ok = false;
      }
    }
  }
  return ok;
}

void check_report(const std::string& file) {
  const auto doc = load(file);
  if (!doc) return;
  // Accept either producer: a run report or a per-traversal metrics file.
  if (has_key(*doc, "schema") &&
      *doc->find("schema") == json("sfg-metrics/1")) {
    if (!has_key(*doc, "traversals") || !doc->find("traversals")->is_array()) {
      fail(file, "sfg-metrics/1 missing array \"traversals\"");
    }
    if (!has_key(*doc, "metrics") || !doc->find("metrics")->is_object()) {
      fail(file, "sfg-metrics/1 missing object \"metrics\"");
    }
    return;
  }
  check_run_report_envelope(file, *doc);
}

/// Deep checks for a per-partitioner comparison table (emitted by
/// ablation_partitioners; any bench gaining a "partitioners" table is held
/// to the same contract).  Guards the fields the partitioner-matrix CI job
/// consumes: one row per known scheme, and sane replication numbers — an
/// RF below 1 or a missing bottleneck column means the bench is measuring
/// the wrong thing, not just formatting it badly.
void check_partitioner_table(const std::string& file, const json& t) {
  const json& headers = *t.find("headers");
  std::map<std::string, std::size_t> col;
  for (std::size_t i = 0; i < headers.size(); ++i) {
    col[headers.at(i).as_string()] = i;
  }
  for (const char* required :
       {"partitioner", "chain_rf", "endpoint_rf", "edge_imbalance",
        "max_rank_delivered", "max_rank_msgs", "max_pair_bytes",
        "matrix_imbalance", "traffic_amp"}) {
    if (!col.contains(required)) {
      fail(file, std::string("partitioners table missing column \"") +
                     required + "\"");
      return;
    }
  }
  const json& rows = *t.find("rows");
  std::set<std::string> seen;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const json& row = rows.at(r);
    const std::string where = "partitioners row " + std::to_string(r);
    const json& name = row.at(col["partitioner"]);
    if (!name.is_string() || !seen.insert(name.as_string()).second) {
      fail(file, where + " has a missing or duplicate partitioner name");
      return;
    }
    for (const char* rf : {"chain_rf", "endpoint_rf", "edge_imbalance"}) {
      const json& v = row.at(col[rf]);
      if (!v.is_number() || v.as_double() < 1.0) {
        fail(file, where + " \"" + rf + "\" is not a number >= 1");
        return;
      }
    }
    for (const char* n : {"max_rank_delivered", "max_rank_msgs",
                          "max_pair_bytes", "matrix_imbalance",
                          "traffic_amp"}) {
      if (!row.at(col[n]).is_number()) {
        fail(file, where + " \"" + n + "\" is not a number");
        return;
      }
    }
  }
  for (const char* scheme : {"edge_list", "dbh", "hdrf", "sne"}) {
    if (!seen.contains(scheme)) {
      fail(file,
           std::string("partitioners table missing scheme \"") + scheme +
               "\"");
    }
  }
}

void check_bench(const std::string& file) {
  const auto doc = load(file);
  if (!doc) return;
  if (!check_run_report_envelope(file, *doc)) return;
  if (!has_key(*doc, "schema_bench") ||
      !(*doc->find("schema_bench") == json("sfg-bench-report/1"))) {
    fail(file, "schema_bench is not \"sfg-bench-report/1\"");
    return;
  }
  if (!has_key(*doc, "wall_time_s") || !doc->find("wall_time_s")->is_number()) {
    fail(file, "missing numeric \"wall_time_s\"");
  }
  if (!has_key(*doc, "tables") || !doc->find("tables")->is_object() ||
      doc->find("tables")->size() == 0) {
    fail(file, "missing non-empty object \"tables\"");
    return;
  }
  for (const auto& [name, t] : doc->find("tables")->items()) {
    if (!has_key(t, "headers") || !t.find("headers")->is_array() ||
        !has_key(t, "rows") || !t.find("rows")->is_array()) {
      fail(file, "table \"" + name + "\" missing headers/rows");
      continue;
    }
    const std::size_t width = t.find("headers")->size();
    bool widths_ok = true;
    for (std::size_t i = 0; i < t.find("rows")->size(); ++i) {
      if (t.find("rows")->at(i).size() != width) {
        fail(file, "table \"" + name + "\" row " + std::to_string(i) +
                       " width != header width");
        widths_ok = false;
        break;
      }
    }
    if (name == "partitioners" && widths_ok) {
      check_partitioner_table(file, t);
    }
  }
}

void check_trace(const std::string& file) {
  const auto doc = load(file);
  if (!doc) return;
  if (!has_key(*doc, "traceEvents") || !doc->find("traceEvents")->is_array()) {
    fail(file, "missing array \"traceEvents\"");
    return;
  }
  const json& events = *doc->find("traceEvents");
  if (events.size() == 0) {
    fail(file, "traceEvents is empty");
    return;
  }
  // Flow events bind by (cat, id); track which phases each flow carries so
  // we can require at least one *complete* chain (start and end) when the
  // trace contains any flows at all.
  struct flow_phases {
    bool s = false, f = false;
  };
  std::map<std::pair<std::string, std::uint64_t>, flow_phases> flows;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json& ev = events.at(i);
    for (const char* key : {"name", "ph", "pid"}) {
      if (!has_key(ev, key)) {
        fail(file, "event " + std::to_string(i) + " missing \"" + key + "\"");
        return;  // one malformed event fails the file; no need to spam
      }
    }
    const std::string ph = ev.find("ph")->as_string();
    if (ph != "M" && !has_key(ev, "ts")) {
      fail(file, "event " + std::to_string(i) + " (ph=" + ph +
                     ") missing \"ts\"");
      return;
    }
    if (ph == "X" && !has_key(ev, "dur")) {
      fail(file, "complete event " + std::to_string(i) + " missing \"dur\"");
      return;
    }
    if (ph == "s" || ph == "t" || ph == "f") {
      if (!has_key(ev, "id") || !ev.find("id")->is_number()) {
        fail(file, "flow event " + std::to_string(i) + " (ph=" + ph +
                       ") missing numeric \"id\"");
        return;
      }
      const std::string cat =
          has_key(ev, "cat") ? ev.find("cat")->as_string() : "";
      auto& fp = flows[{cat, ev.find("id")->as_u64()}];
      if (ph == "s") fp.s = true;
      if (ph == "f") fp.f = true;
    }
  }
  if (!flows.empty()) {
    bool complete = false;
    for (const auto& [key, fp] : flows) complete = complete || (fp.s && fp.f);
    if (!complete) {
      fail(file, "trace has flow events but no flow id carries both a start "
                 "('s') and an end ('f') — no complete causal chain");
    }
  }
}

void check_flight(const std::string& file) {
  const auto doc = load(file);
  if (!doc) return;
  if (!has_key(*doc, "schema") ||
      !(*doc->find("schema") == json("sfg-flight/1"))) {
    fail(file, "schema is not \"sfg-flight/1\"");
    return;
  }
  if (!has_key(*doc, "why") || !doc->find("why")->is_string()) {
    fail(file, "missing string \"why\"");
  }
  if (!has_key(*doc, "capacity") || !doc->find("capacity")->is_number()) {
    fail(file, "missing numeric \"capacity\"");
  }
  if (!has_key(*doc, "ranks") || !doc->find("ranks")->is_array()) {
    fail(file, "missing array \"ranks\"");
    return;
  }
  const json& ranks = *doc->find("ranks");
  std::set<std::int64_t> seen_ranks;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const json& entry = ranks.at(r);
    const std::string where = "ranks[" + std::to_string(r) + "]";
    for (const char* key : {"rank", "recorded", "dropped"}) {
      if (!has_key(entry, key) || !entry.find(key)->is_number()) {
        fail(file, where + " missing numeric \"" + key + "\"");
        return;
      }
    }
    const std::int64_t rank = entry.find("rank")->as_i64();
    if (!seen_ranks.insert(rank).second) {
      fail(file, where + " duplicates rank " + std::to_string(rank));
      return;
    }
    if (!has_key(entry, "events") || !entry.find("events")->is_array()) {
      fail(file, where + " missing array \"events\"");
      return;
    }
    const json& events = *entry.find("events");
    const std::uint64_t recorded = entry.find("recorded")->as_u64();
    const std::uint64_t dropped = entry.find("dropped")->as_u64();
    if (dropped > recorded || events.size() != recorded - dropped) {
      fail(file, where + " events count != recorded - dropped");
      return;
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
      const json& ev = events.at(i);
      const std::string ev_where = where + ".events[" + std::to_string(i) + "]";
      if (!has_key(ev, "ts_us") || !ev.find("ts_us")->is_number()) {
        fail(file, ev_where + " missing numeric \"ts_us\"");
        return;
      }
      if (!has_key(ev, "kind") || !ev.find("kind")->is_string()) {
        fail(file, ev_where + " missing string \"kind\"");
        return;
      }
      for (const char* key : {"a", "b"}) {
        if (!has_key(ev, key) || !ev.find(key)->is_number()) {
          fail(file, ev_where + " missing numeric \"" + key + "\"");
          return;
        }
      }
    }
  }
}

/// One traversal entry's "comm_matrix" section (sfg-comm-matrix/1): the
/// rank x rank traffic matrix gathered by visitor_queue.  Checks both
/// shape (square N x N, non-negative) and the conservation invariants the
/// mailbox guarantees at quiescence: row sums match the embedded totals
/// snapshot, the diagonal is self-delivery (sent[i][i] == delivered on i
/// from i), the transpose balances (what o sent toward d, d delivered
/// from o), and the per-traversal sfg-metrics mailbox counters never
/// exceed the cumulative totals.
void check_comm_matrix_entry(const std::string& file, const json& entry,
                             std::size_t traversal_idx) {
  const std::string where = "traversal " + std::to_string(traversal_idx);
  const json& cm = *entry.find("comm_matrix");
  if (!has_key(cm, "schema") ||
      !(*cm.find("schema") == json("sfg-comm-matrix/1"))) {
    fail(file, where + " comm_matrix schema is not \"sfg-comm-matrix/1\"");
    return;
  }
  if (!has_key(cm, "ranks") || !cm.find("ranks")->is_number() ||
      !has_key(cm, "rows") || !cm.find("rows")->is_array()) {
    fail(file, where + " comm_matrix missing \"ranks\"/\"rows\"");
    return;
  }
  const std::size_t n = static_cast<std::size_t>(cm.find("ranks")->as_u64());
  const json& rows = *cm.find("rows");
  if (n == 0 || rows.size() != n) {
    fail(file, where + " comm_matrix rows count != ranks");
    return;
  }
  constexpr const char* kRowKeys[] = {
      "sent_records", "sent_bytes",    "delivered_records", "delivered_bytes",
      "dup_records",  "flush_packets", "flush_bytes"};
  // matrix[key][rank] = that rank's row, loaded as u64 for exact sums.
  std::map<std::string, std::vector<std::vector<std::uint64_t>>> m;
  for (std::size_t r = 0; r < n; ++r) {
    const json& row = rows.at(r);
    const std::string rw = where + " comm_matrix row " + std::to_string(r);
    if (!has_key(row, "rank") || !row.find("rank")->is_number() ||
        row.find("rank")->as_u64() != r) {
      fail(file, rw + " \"rank\" is not " + std::to_string(r) +
                     " (rows must be in rank order)");
      return;
    }
    for (const char* key : kRowKeys) {
      if (!has_key(row, key) || !row.find(key)->is_array() ||
          row.find(key)->size() != n) {
        fail(file, rw + " \"" + key + "\" is not a length-" +
                       std::to_string(n) + " array (matrix must be square)");
        return;
      }
      std::vector<std::uint64_t> vals;
      for (std::size_t c = 0; c < n; ++c) {
        const json& v = row.find(key)->at(c);
        if (!v.is_number() || v.as_double() < 0) {
          fail(file, rw + " \"" + key + "\"[" + std::to_string(c) +
                         "] is not a non-negative number");
          return;
        }
        vals.push_back(v.as_u64());
      }
      m[key].push_back(std::move(vals));
    }
    if (!has_key(row, "latency_us")) {
      fail(file, rw + " missing \"latency_us\" histogram");
      return;
    }
  }
  // Row sums vs the totals snapshot taken at the same instant.
  const auto sum = [](const std::vector<std::uint64_t>& v) {
    std::uint64_t s = 0;
    for (const auto x : v) s += x;
    return s;
  };
  constexpr std::pair<const char*, const char*> kSumChecks[] = {
      {"sent_records", "records_sent"},
      {"delivered_records", "records_delivered"},
      {"flush_packets", "packets_sent"},
      {"flush_bytes", "packet_bytes_sent"}};
  for (std::size_t r = 0; r < n; ++r) {
    const json& row = rows.at(r);
    const std::string rw = where + " comm_matrix row " + std::to_string(r);
    if (!has_key(row, "totals") || !row.find("totals")->is_object()) {
      fail(file, rw + " missing object \"totals\"");
      return;
    }
    const json& totals = *row.find("totals");
    for (const auto& [row_key, total_key] : kSumChecks) {
      if (!has_key(totals, total_key) ||
          !totals.find(total_key)->is_number()) {
        fail(file, rw + " totals missing numeric \"" + total_key + "\"");
        return;
      }
      const std::uint64_t got = sum(m[row_key][r]);
      const std::uint64_t want = totals.find(total_key)->as_u64();
      if (got != want) {
        fail(file, rw + " sum(" + row_key + ") = " + std::to_string(got) +
                       " != totals." + total_key + " = " +
                       std::to_string(want));
        return;
      }
    }
    // Diagonal: what rank r sent to itself it also delivered from itself.
    if (m["sent_records"][r][r] != m["delivered_records"][r][r]) {
      fail(file, rw + " diagonal sent_records != delivered_records "
                      "(self-delivery must balance)");
      return;
    }
  }
  // Transpose conservation at quiescence: every record o sent toward
  // final dest d was delivered by d and attributed to origin o (routing
  // relays don't touch these rows; duplicates are suppressed before
  // delivery and land in dup_records instead).
  for (std::size_t o = 0; o < n; ++o) {
    for (std::size_t d = 0; d < n; ++d) {
      if (m["sent_records"][o][d] != m["delivered_records"][d][o]) {
        fail(file, where + " comm_matrix sent_records[" + std::to_string(o) +
                       "][" + std::to_string(d) + "] != delivered_records[" +
                       std::to_string(d) + "][" + std::to_string(o) + "]");
        return;
      }
    }
  }
  // The sfg-metrics per-rank mailbox counters are per-traversal deltas;
  // the matrix totals are cumulative over the queue's life, so delta <=
  // cumulative always.
  if (has_key(entry, "per_rank") && entry.find("per_rank")->is_array() &&
      entry.find("per_rank")->size() == n) {
    for (std::size_t r = 0; r < n; ++r) {
      const json& pr = entry.find("per_rank")->at(r);
      if (!has_key(pr, "mailbox")) continue;
      const json& mb = *pr.find("mailbox");
      const json& totals = *rows.at(r).find("totals");
      for (const char* key : {"records_sent", "records_delivered",
                              "packets_sent", "packet_bytes_sent"}) {
        if (!has_key(mb, key) || !has_key(totals, key)) continue;
        if (mb.find(key)->as_u64() > totals.find(key)->as_u64()) {
          fail(file, where + " per_rank[" + std::to_string(r) +
                         "].mailbox." + key +
                         " exceeds the cumulative matrix total");
          return;
        }
      }
    }
  }
}

/// --comm-matrix: an sfg-metrics/1 report whose traversals carry
/// sfg-comm-matrix/1 sections.  At least one traversal must have one, and
/// every one present must validate.
void check_comm_matrix(const std::string& file) {
  const auto doc = load(file);
  if (!doc) return;
  if (!has_key(*doc, "schema") ||
      !(*doc->find("schema") == json("sfg-metrics/1"))) {
    fail(file, "schema is not \"sfg-metrics/1\"");
    return;
  }
  if (!has_key(*doc, "traversals") || !doc->find("traversals")->is_array()) {
    fail(file, "missing array \"traversals\"");
    return;
  }
  const json& traversals = *doc->find("traversals");
  std::size_t with_matrix = 0;
  for (std::size_t i = 0; i < traversals.size(); ++i) {
    const json& entry = traversals.at(i);
    if (!has_key(entry, "comm_matrix")) continue;
    ++with_matrix;
    check_comm_matrix_entry(file, entry, i);
  }
  if (with_matrix == 0) {
    fail(file, "no traversal carries a \"comm_matrix\" section (was "
               "SFG_COMM_MATRIX / SFG_METRICS set?)");
  }
}

/// One traversal's "bfs" section: mode tag, the α/β knobs actually used,
/// a non-empty per-level direction trace, and a direction_switch_level
/// consistent with that trace (== index of the first bottom-up level, or
/// -1 when the traversal never left top-down).
void check_bfs_entry(const std::string& file, const json& bfs,
                     std::size_t index) {
  const std::string where = "traversals[" + std::to_string(index) + "].bfs";
  if (!has_key(bfs, "mode") || !bfs.find("mode")->is_string()) {
    fail(file, where + " missing string \"mode\"");
    return;
  }
  const std::string& mode = bfs.find("mode")->as_string();
  if (mode != "async" && mode != "topdown" && mode != "bottomup" &&
      mode != "hybrid") {
    fail(file, where + ".mode \"" + mode + "\" is not a BFS mode");
    return;
  }
  for (const char* key : {"alpha", "beta"}) {
    if (!has_key(bfs, key) || !bfs.find(key)->is_number()) {
      fail(file, where + " missing numeric \"" + key + "\"");
      return;
    }
  }
  if (!has_key(bfs, "direction_switch_level") ||
      !bfs.find("direction_switch_level")->is_number()) {
    fail(file, where + " missing numeric \"direction_switch_level\"");
    return;
  }
  const std::int64_t switch_level =
      bfs.find("direction_switch_level")->as_i64();
  if (!has_key(bfs, "levels") || !bfs.find("levels")->is_array()) {
    fail(file, where + " missing array \"levels\"");
    return;
  }
  const json& levels = *bfs.find("levels");
  if (levels.size() == 0) {
    fail(file, where + ".levels is empty (level-synchronous traversal "
                       "recorded no levels)");
    return;
  }
  std::int64_t first_bottom_up = -1;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const json& l = levels.at(i);
    const std::string lwhere = where + ".levels[" + std::to_string(i) + "]";
    for (const char* key :
         {"level", "frontier_vertices", "frontier_edges", "claims_sent"}) {
      if (!has_key(l, key) || !l.find(key)->is_number()) {
        fail(file, lwhere + " missing numeric \"" + key + "\"");
        return;
      }
    }
    if (l.find("level")->as_u64() != i) {
      fail(file, lwhere + ".level != " + std::to_string(i));
      return;
    }
    if (!has_key(l, "direction") || !l.find("direction")->is_string()) {
      fail(file, lwhere + " missing string \"direction\"");
      return;
    }
    const std::string& dir = l.find("direction")->as_string();
    if (dir != "topdown" && dir != "bottomup") {
      fail(file, lwhere + ".direction \"" + dir + "\" is not a direction");
      return;
    }
    if (dir == "bottomup" && first_bottom_up < 0) {
      first_bottom_up = static_cast<std::int64_t>(i);
    }
  }
  if (switch_level != first_bottom_up) {
    fail(file, where + ".direction_switch_level (" +
                   std::to_string(switch_level) +
                   ") does not match the first bottom-up level in the "
                   "trace (" +
                   std::to_string(first_bottom_up) + ")");
  }
}

/// --bfs-levels: an sfg-metrics/1 report where at least one traversal
/// carries a "bfs" direction trace, and every one present validates.
/// The async queue writes no "bfs" section, so a report from a mixed run
/// passes as long as one level-synchronous traversal is in it.
void check_bfs_levels(const std::string& file) {
  const auto doc = load(file);
  if (!doc) return;
  if (!has_key(*doc, "schema") ||
      !(*doc->find("schema") == json("sfg-metrics/1"))) {
    fail(file, "schema is not \"sfg-metrics/1\"");
    return;
  }
  if (!has_key(*doc, "traversals") || !doc->find("traversals")->is_array()) {
    fail(file, "missing array \"traversals\"");
    return;
  }
  const json& traversals = *doc->find("traversals");
  std::size_t with_bfs = 0;
  for (std::size_t i = 0; i < traversals.size(); ++i) {
    const json& entry = traversals.at(i);
    if (!has_key(entry, "bfs")) continue;
    ++with_bfs;
    check_bfs_entry(file, *entry.find("bfs"), i);
  }
  if (with_bfs == 0) {
    fail(file, "no traversal carries a \"bfs\" section (was the traversal "
               "run with --bfs=topdown|bottomup|hybrid and SFG_METRICS "
               "set?)");
  }
}

/// --critpath: an sfg-metrics/1 report where at least one traversal
/// carries an sfg-critpath/1 section (embedded when SFG_SPANS was set),
/// and every one present passes the invariants enforced next to the
/// analyzer (obs/critpath.cpp): a connected start→finish segment chain
/// within the measured window, fractions consistent with durations,
/// blame totals matching the segments, and coverage >= 90%.
void check_critpath(const std::string& file) {
  const auto doc = load(file);
  if (!doc) return;
  if (!has_key(*doc, "schema") ||
      !(*doc->find("schema") == json("sfg-metrics/1"))) {
    fail(file, "schema is not \"sfg-metrics/1\"");
    return;
  }
  if (!has_key(*doc, "traversals") || !doc->find("traversals")->is_array()) {
    fail(file, "missing array \"traversals\"");
    return;
  }
  const json& traversals = *doc->find("traversals");
  std::size_t with_critpath = 0;
  for (std::size_t i = 0; i < traversals.size(); ++i) {
    const json& entry = traversals.at(i);
    if (!has_key(entry, "critpath")) continue;
    ++with_critpath;
    std::vector<std::string> errors;
    if (!sfg::obs::critpath_validate(*entry.find("critpath"), &errors)) {
      const std::string where = "traversals[" + std::to_string(i) + "].critpath";
      for (const std::string& e : errors) fail(file, where + ": " + e);
      if (errors.empty()) fail(file, where + " is invalid");
    }
  }
  if (with_critpath == 0) {
    fail(file, "no traversal carries a \"critpath\" section (was SFG_SPANS "
               "set alongside SFG_METRICS?)");
  }
}

/// One traversal's "mem" section: the shape rules live next to the
/// producer (obs/mem.cpp, mem_validate), so the unit tests and this tool
/// can never drift apart.
void check_mem_entry(const std::string& file, const json& entry,
                     std::size_t index) {
  std::vector<std::string> errors;
  if (!sfg::obs::mem_validate(*entry.find("mem"), &errors)) {
    const std::string where = "traversals[" + std::to_string(index) + "].mem";
    for (const std::string& e : errors) fail(file, where + ": " + e);
    if (errors.empty()) fail(file, where + " is invalid");
  }
}

/// --mem: an sfg-metrics/1 report where at least one traversal carries an
/// sfg-mem/1 section, and every one present validates.
void check_mem(const std::string& file) {
  const auto doc = load(file);
  if (!doc) return;
  if (!has_key(*doc, "schema") ||
      !(*doc->find("schema") == json("sfg-metrics/1"))) {
    fail(file, "schema is not \"sfg-metrics/1\"");
    return;
  }
  if (!has_key(*doc, "traversals") || !doc->find("traversals")->is_array()) {
    fail(file, "missing array \"traversals\"");
    return;
  }
  const json& traversals = *doc->find("traversals");
  std::size_t with_mem = 0;
  for (std::size_t i = 0; i < traversals.size(); ++i) {
    const json& entry = traversals.at(i);
    if (!has_key(entry, "mem")) continue;
    ++with_mem;
    check_mem_entry(file, entry, i);
  }
  if (with_mem == 0) {
    fail(file, "no traversal carries a \"mem\" section (was SFG_MEM / "
               "SFG_MEM_BUDGET set alongside SFG_METRICS?)");
  }
}

void check_timeseries(const std::string& file) {
  // The line-level rules live next to the producer (obs/timeseries.cpp),
  // so the chaos test and this tool can never drift apart.
  std::vector<std::string> errors;
  if (!sfg::obs::ts_validate_file(file, &errors)) {
    for (const std::string& e : errors) fail(file, e);
    if (errors.empty()) fail(file, "invalid time-series file");
  }
}

/// --all: schema-sniffed umbrella.  One flag, every registered validator
/// that applies to the file.  Sniffing is structural, not by extension:
/// a whole-file JSON parse that fails falls through to the line-oriented
/// time-series validator (the only JSONL format we emit); parsed
/// documents dispatch on their schema tag.  Metrics reports additionally
/// run the section validators for whichever sections are actually
/// present — unlike the dedicated flags, --all does not require any
/// particular section to exist.
void check_all(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    fail(file, "cannot open");
    return;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = json::parse(ss.str());
  if (!doc || !doc->is_object()) {
    check_timeseries(file);
    return;
  }
  if (has_key(*doc, "traceEvents")) {
    check_trace(file);
    return;
  }
  const json* schema = doc->find("schema");
  const std::string tag =
      (schema != nullptr && schema->is_string()) ? schema->as_string() : "";
  if (tag == "sfg-flight/1") {
    check_flight(file);
  } else if (tag == "sfg-run-report/1") {
    if (has_key(*doc, "schema_bench")) {
      check_bench(file);
    } else {
      check_report(file);
    }
  } else if (tag == "sfg-metrics/1") {
    check_report(file);
    if (!has_key(*doc, "traversals") || !doc->find("traversals")->is_array()) {
      return;  // check_report already failed the file
    }
    const json& traversals = *doc->find("traversals");
    for (std::size_t i = 0; i < traversals.size(); ++i) {
      const json& entry = traversals.at(i);
      if (has_key(entry, "comm_matrix")) {
        check_comm_matrix_entry(file, entry, i);
      }
      if (has_key(entry, "bfs")) {
        check_bfs_entry(file, *entry.find("bfs"), i);
      }
      if (has_key(entry, "critpath")) {
        std::vector<std::string> errors;
        if (!sfg::obs::critpath_validate(*entry.find("critpath"), &errors)) {
          const std::string where =
              "traversals[" + std::to_string(i) + "].critpath";
          for (const std::string& e : errors) fail(file, where + ": " + e);
          if (errors.empty()) fail(file, where + " is invalid");
        }
      }
      if (has_key(entry, "mem")) {
        check_mem_entry(file, entry, i);
      }
    }
  } else {
    fail(file, "unrecognized document (no known schema tag, traceEvents, or "
               "time-series stream)");
  }
}

int usage() {
  std::cerr << "usage: sfg_report_check [--bench FILE]... [--report FILE]... "
               "[--trace FILE]... [--flight FILE]... [--timeseries FILE]... "
               "[--comm-matrix FILE]... [--bfs-levels FILE]... "
               "[--critpath FILE]... [--mem FILE]... [--all FILE]...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  int checked = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (i + 1 >= argc) return usage();
    const std::string file = argv[++i];
    if (a == "--bench") {
      check_bench(file);
    } else if (a == "--report") {
      check_report(file);
    } else if (a == "--trace") {
      check_trace(file);
    } else if (a == "--flight") {
      check_flight(file);
    } else if (a == "--timeseries") {
      check_timeseries(file);
    } else if (a == "--comm-matrix") {
      check_comm_matrix(file);
    } else if (a == "--bfs-levels") {
      check_bfs_levels(file);
    } else if (a == "--critpath") {
      check_critpath(file);
    } else if (a == "--mem") {
      check_mem(file);
    } else if (a == "--all") {
      check_all(file);
    } else {
      return usage();
    }
    ++checked;
  }
  if (g_failures == 0) {
    std::cout << "sfg_report_check: " << checked << " file(s) OK\n";
    return 0;
  }
  return 1;
}
