/// \file sfg_top.cpp
/// Terminal monitor for a running traversal — `top` for the visitor
/// queue.  Tails the per-rank sfg-timeseries/1 JSONL files that
/// SFG_TS_INTERVAL_MS / SFG_TS_DIR produce (obs/timeseries.hpp) and
/// renders, per refresh:
///
///   - traversal progress: visitors executed + execution rate, summed and
///     per rank
///   - per-rank queue depth, locally-known in-flight balance, termination
///     epoch and a phase-breakdown bar (where each rank's poll loop is
///     spending its time: visit/scan/pack/flush/poll/term/io/idle)
///   - mailbox and page-cache rates from the process-wide counters
///   - straggler highlighting: a rank whose queue depth or execution rate
///     is far from the median is marked `*` and listed in the footer
///
///   sfg_top [--dir DIR] [--interval MS] [--once]
///
///     --dir DIR       directory with sfg_ts_rank<r>.jsonl files
///                     (default: $SFG_TS_DIR, else ".")
///     --interval MS   refresh period in live mode (default 500)
///     --once          render one snapshot without clearing the screen and
///                     exit — 0 if at least one rank had a valid sample,
///                     1 otherwise (CI smoke uses this)
///
/// Live mode re-reads the (small, line-per-sample) files each refresh and
/// redraws with ANSI clear; stop with Ctrl-C.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace {

using sfg::obs::json;

/// One rank's most recent sample, flattened for rendering.
struct rank_row {
  int rank = 0;
  std::uint64_t seq = 0;
  std::uint64_t ts_us = 0;
  double queue_depth = 0;
  double inflight = 0;
  double epoch = 0;
  double executed = 0;
  double executed_rate = 0;
  // Phase fractions in enum order (phase.hpp): visit, scan, mbox_pack,
  // mbox_flush, poll, term, io_wait, idle.
  double phase[8] = {};
  // Process-wide rates/totals as seen at this rank's sample time.
  double pkt_rate = 0;
  double byte_rate = 0;
  double hit_rate = 0;
  double miss_rate = 0;
  double wb_rate = 0;
  double comm_byte_rate = 0;
  double req_byte_rate = 0;
  double dev_read_rate = 0;
  double dev_write_rate = 0;
  // Memory attribution gauges (obs/mem.hpp): this rank's accounted bytes
  // and its sampled RSS at the same instant.
  double mem_accounted = 0;
  double mem_rss = 0;
  std::uint64_t total_executed = 0;
  bool straggler = false;
  bool over_budget = false;
};

constexpr const char* kPhaseKeys[8] = {"visit",     "scan", "mbox_pack",
                                       "mbox_flush", "poll", "term",
                                       "io_wait",    "idle"};
constexpr char kPhaseGlyph[8] = {'V', 'S', 'K', 'F', 'P', 'T', 'I', '.'};

double num_or(const json& obj, const char* key, double fallback) {
  const json* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

/// Parse the last valid line of one rank file.
std::optional<rank_row> read_rank_file(const std::filesystem::path& p,
                                       int rank) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  std::string line;
  std::optional<json> last;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = json::parse(line);
    if (parsed && parsed->is_object()) last = std::move(*parsed);
  }
  if (!last) return std::nullopt;
  const json* schema = last->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "sfg-timeseries/1") {
    return std::nullopt;
  }
  rank_row r;
  r.rank = rank;
  r.seq = static_cast<std::uint64_t>(num_or(*last, "seq", 0));
  r.ts_us = static_cast<std::uint64_t>(num_or(*last, "ts_us", 0));
  if (const json* g = last->find("gauges"); g != nullptr && g->is_object()) {
    r.queue_depth = num_or(*g, "queue_depth", 0);
    r.inflight = num_or(*g, "inflight_records", 0);
    r.epoch = num_or(*g, "term_epoch", 0);
    r.executed = num_or(*g, "visitors_executed", 0);
    r.executed_rate = num_or(*g, "executed_rate", 0);
    r.mem_accounted = num_or(*g, "mem_accounted_bytes", 0);
    r.mem_rss = num_or(*g, "mem_rss_bytes", 0);
  }
  if (const json* ph = last->find("phase"); ph != nullptr && ph->is_object()) {
    for (int i = 0; i < 8; ++i) r.phase[i] = num_or(*ph, kPhaseKeys[i], 0);
  }
  if (const json* ra = last->find("rates"); ra != nullptr && ra->is_object()) {
    r.pkt_rate = num_or(*ra, "packets_sent", 0);
    r.byte_rate = num_or(*ra, "packet_bytes_sent", 0);
    r.hit_rate = num_or(*ra, "cache_hits", 0);
    r.miss_rate = num_or(*ra, "cache_misses", 0);
    r.wb_rate = num_or(*ra, "cache_writebacks", 0);
    r.comm_byte_rate = num_or(*ra, "comm_bytes_sent", 0);
    r.req_byte_rate = num_or(*ra, "bytes_requested", 0);
    r.dev_read_rate = num_or(*ra, "dev_bytes_read", 0);
    r.dev_write_rate = num_or(*ra, "dev_bytes_written", 0);
  }
  if (const json* to = last->find("totals"); to != nullptr && to->is_object()) {
    r.total_executed =
        static_cast<std::uint64_t>(num_or(*to, "visitors_executed", 0));
  }
  return r;
}

/// Scan the directory for sfg_ts_rank<r>.jsonl files.
std::vector<rank_row> collect(const std::string& dir) {
  std::vector<rank_row> rows;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "sfg_ts_rank";
    constexpr std::string_view suffix = ".jsonl";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string mid =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    char* end = nullptr;
    const long rank = std::strtol(mid.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;
    if (auto row = read_rank_file(entry.path(), static_cast<int>(rank))) {
      rows.push_back(*row);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const rank_row& a, const rank_row& b) { return a.rank < b.rank; });
  return rows;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Mark ranks that are far off the median: queue depth piling up (> 4x
/// median and non-trivial) or execution rate collapsed (< half median
/// while peers are making progress).
void mark_stragglers(std::vector<rank_row>& rows) {
  if (rows.size() < 2) return;
  std::vector<double> depths;
  std::vector<double> rates;
  for (const auto& r : rows) {
    depths.push_back(r.queue_depth);
    rates.push_back(r.executed_rate);
  }
  const double med_depth = median_of(depths);
  const double med_rate = median_of(rates);
  for (auto& r : rows) {
    const bool deep =
        r.queue_depth > 64 && r.queue_depth > 4 * std::max(med_depth, 1.0);
    const bool slow = med_rate > 0 && r.executed_rate < 0.5 * med_rate;
    r.straggler = deep || slow;
  }
}

/// Flag ranks whose accounted bytes sit at or over SFG_MEM_BUDGET (the
/// same per-rank budget the pressure ladder is armed with).
void mark_over_budget(std::vector<rank_row>& rows) {
  const char* env = std::getenv("SFG_MEM_BUDGET");
  if (env == nullptr || *env == '\0') return;
  const double budget = std::strtod(env, nullptr);
  if (budget <= 0) return;
  for (auto& r : rows) r.over_budget = r.mem_accounted >= budget;
}

std::string phase_bar(const double frac[8], int width) {
  std::string bar;
  bar.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < 8; ++i) {
    const int cells =
        static_cast<int>(frac[i] * width + 0.5);
    for (int c = 0; c < cells && static_cast<int>(bar.size()) < width; ++c) {
      bar += kPhaseGlyph[i];
    }
  }
  while (static_cast<int>(bar.size()) < width) bar += ' ';  // unattributed
  return bar;
}

std::string human_rate(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

void render(const std::vector<rank_row>& rows, const std::string& dir) {
  std::uint64_t total_exec = 0;
  double exec_rate = 0;
  double pkt = 0;
  double bytes = 0;
  double hits = 0;
  double misses = 0;
  double wbs = 0;
  double comm_bytes = 0;
  double req_bytes = 0;
  double dev_read = 0;
  double dev_write = 0;
  std::uint64_t max_seq = 0;
  for (const auto& r : rows) {
    total_exec += static_cast<std::uint64_t>(r.executed);
    exec_rate += r.executed_rate;
    max_seq = std::max(max_seq, r.seq);
    // Process-wide rates are identical modulo sampling skew; take the max
    // so one stalled rank's old sample doesn't zero the display.
    pkt = std::max(pkt, r.pkt_rate);
    bytes = std::max(bytes, r.byte_rate);
    hits = std::max(hits, r.hit_rate);
    misses = std::max(misses, r.miss_rate);
    wbs = std::max(wbs, r.wb_rate);
    comm_bytes = std::max(comm_bytes, r.comm_byte_rate);
    req_bytes = std::max(req_bytes, r.req_byte_rate);
    dev_read = std::max(dev_read, r.dev_read_rate);
    dev_write = std::max(dev_write, r.dev_write_rate);
  }
  std::printf("sfg_top — %zu rank(s), dir %s, sample seq %llu\n", rows.size(),
              dir.c_str(), static_cast<unsigned long long>(max_seq));
  std::printf(
      "progress: %llu visitors executed, %s/s | mailbox %s pkt/s %sB/s | "
      "cache %s hit/s %s miss/s %s wb/s\n",
      static_cast<unsigned long long>(total_exec),
      human_rate(exec_rate).c_str(), human_rate(pkt).c_str(),
      human_rate(bytes).c_str(), human_rate(hits).c_str(),
      human_rate(misses).c_str(), human_rate(wbs).c_str());
  // Device-bytes vs requested-bytes is live read amplification; comm B/s
  // is transport payload (mailbox B/s above includes packet headers).
  char amp_str[32] = "";
  if (req_bytes > 0 && dev_read > 0) {
    std::snprintf(amp_str, sizeof amp_str, " (read-amp %.2fx)",
                  dev_read / req_bytes);
  }
  std::printf(
      "data:     comm %sB/s | io req %sB/s dev-rd %sB/s dev-wr %sB/s%s\n",
      human_rate(comm_bytes).c_str(), human_rate(req_bytes).c_str(),
      human_rate(dev_read).c_str(), human_rate(dev_write).c_str(), amp_str);
  // Memory line: per-rank accounted bytes are additive (one ledger per
  // rank); RSS is per process, so take the max across samples.  A '!'
  // after a rank below flags accounted bytes at or over SFG_MEM_BUDGET.
  double mem_accounted = 0;
  double mem_rss = 0;
  for (const auto& r : rows) {
    mem_accounted += r.mem_accounted;
    mem_rss = std::max(mem_rss, r.mem_rss);
  }
  if (mem_accounted > 0 || mem_rss > 0) {
    std::printf("mem:      accounted %sB rss %sB",
                human_rate(mem_accounted).c_str(),
                human_rate(mem_rss).c_str());
    std::string over;
    for (const auto& r : rows) {
      if (!r.over_budget) continue;
      if (!over.empty()) over += ", ";
      over += std::to_string(r.rank);
    }
    if (!over.empty()) {
      std::printf(" | OVER BUDGET (!): rank %s", over.c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "phase glyphs: V visit  S scan  K pack  F flush  P poll  T term  "
      "I io  . idle\n");
  std::printf("%5s %9s %9s %6s %10s %9s %8s  %-24s\n", "rank", "depth",
              "inflight", "epoch", "executed", "exec/s", "mem", "phase");
  std::string stragglers;
  for (const auto& r : rows) {
    char mem_col[16];
    std::snprintf(mem_col, sizeof mem_col, "%s%c",
                  human_rate(r.mem_accounted).c_str(),
                  r.over_budget ? '!' : ' ');
    std::printf("%4d%c %9.0f %9.0f %6.0f %10.0f %9s %8s  %-24s\n", r.rank,
                r.straggler ? '*' : ' ', r.queue_depth, r.inflight, r.epoch,
                r.executed, human_rate(r.executed_rate).c_str(), mem_col,
                phase_bar(r.phase, 24).c_str());
    if (r.straggler) {
      if (!stragglers.empty()) stragglers += ", ";
      stragglers += std::to_string(r.rank);
    }
  }
  if (!stragglers.empty()) {
    std::printf("stragglers (*): rank %s — queue piling up or execution "
                "rate far below median\n",
                stragglers.c_str());
  }
  std::fflush(stdout);
}

int usage() {
  std::cerr << "usage: sfg_top [--dir DIR] [--interval MS] [--once]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  if (const char* env = std::getenv("SFG_TS_DIR"); env != nullptr && *env) {
    dir = env;
  } else {
    dir = ".";
  }
  long interval_ms = 500;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--once") {
      once = true;
    } else if (a == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (a == "--interval" && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
      if (interval_ms <= 0) interval_ms = 500;
    } else {
      return usage();
    }
  }

  for (;;) {
    std::vector<rank_row> rows = collect(dir);
    mark_stragglers(rows);
    mark_over_budget(rows);
    if (once) {
      if (rows.empty()) {
        std::cerr << "sfg_top: no sfg_ts_rank*.jsonl samples in " << dir
                  << "\n";
        return 1;
      }
      render(rows, dir);
      return 0;
    }
    std::printf("\033[2J\033[H");  // clear + home
    if (rows.empty()) {
      std::printf("sfg_top: waiting for sfg_ts_rank*.jsonl in %s ...\n",
                  dir.c_str());
      std::fflush(stdout);
    } else {
      render(rows, dir);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
