/// \file sfg_why.cpp
/// Bottleneck attribution: renders the ranked answer to "where did the
/// wall time go?" from the sfg-critpath/1 section a traversal embeds when
/// SFG_SPANS is set (DESIGN.md §14).  Each blame line is cross-referenced
/// against the *other* sections of the same report:
///
///   - wire segments name their channel and are checked against the
///     comm-matrix hottest origin->dest pair (sfg-comm-matrix/1);
///   - io_wait segments carry the page-cache read amplification from the
///     registry snapshot (cache.dev_bytes_read / cache.bytes_requested);
///   - when the traversal was a level-synchronous BFS, blame is located
///     in level space via the critpath section's barrier markers.
///
///   sfg_why [--json] [--traversal N] FILE
///
/// Exit 0 after rendering a validated section; 1 on a missing/invalid
/// report or a critpath section that fails critpath_validate (CI gates on
/// this, like sfg_heat --once); 2 on usage errors.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/json.hpp"

namespace {

using sfg::obs::json;

double num_or(const json& obj, const char* key, double fallback) {
  const json* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

std::string human_bytes(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fGB", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fMB", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fkB", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fB", v);
  }
  return buf;
}

std::string human_us(double us) {
  char buf[32];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fus", us);
  }
  return buf;
}

/// "wire S->D" -> (S, D); false for every other blame kind.
bool parse_wire_kind(const std::string& kind, int& src, int& dst) {
  constexpr std::string_view prefix = "wire ";
  if (kind.compare(0, prefix.size(), prefix) != 0) return false;
  const auto arrow = kind.find("->", prefix.size());
  if (arrow == std::string::npos) return false;
  src = std::atoi(kind.c_str() + prefix.size());
  dst = std::atoi(kind.c_str() + arrow + 2);
  return true;
}

/// Comm-matrix cross-reference: the hottest off-diagonal sent-bytes pair
/// plus a lookup for any specific channel.
struct matrix_ref {
  bool valid = false;
  int hot_src = 0, hot_dst = 0;
  std::uint64_t hot_bytes = 0;
  std::vector<std::vector<std::uint64_t>> sent_bytes;
};

/// Map a blame entry's chain extent to the BFS levels it overlaps.
/// levels[i].ts_us is level i's barrier exit, so level i's work spans
/// [levels[i].ts_us, levels[i+1].ts_us).
bool level_range(const json& section, int rank, const std::string& kind,
                 std::uint64_t& lo_level, std::uint64_t& hi_level) {
  const json* levels = section.find("levels");
  const json* segs = section.find("segments");
  if (levels == nullptr || !levels->is_array() || levels->size() == 0 ||
      segs == nullptr || !segs->is_array()) {
    return false;
  }
  std::uint64_t lo_ts = ~std::uint64_t{0}, hi_ts = 0;
  for (std::size_t i = 0; i < segs->size(); ++i) {
    const json& e = segs->at(i);
    const json* k = e.find("kind");
    const json* w = e.find("src");
    std::string seg_kind = (k != nullptr && k->is_string()) ? k->as_string() : "";
    if (w != nullptr) {  // wire segments blame under their channel key
      seg_kind = "wire " + std::to_string(static_cast<int>(num_or(e, "src", 0))) +
                 "->" + std::to_string(static_cast<int>(num_or(e, "dst", 0)));
    }
    if (static_cast<int>(num_or(e, "rank", -1)) != rank || seg_kind != kind) {
      continue;
    }
    lo_ts = std::min(lo_ts, static_cast<std::uint64_t>(num_or(e, "t0_us", 0)));
    hi_ts = std::max(hi_ts, static_cast<std::uint64_t>(num_or(e, "t1_us", 0)));
  }
  if (hi_ts == 0 || lo_ts > hi_ts) return false;
  bool found = false;
  for (std::size_t i = 0; i < levels->size(); ++i) {
    const auto lv = static_cast<std::uint64_t>(num_or(levels->at(i), "level", 0));
    const auto t0 = static_cast<std::uint64_t>(num_or(levels->at(i), "ts_us", 0));
    const std::uint64_t t1 = i + 1 < levels->size()
                                 ? static_cast<std::uint64_t>(
                                       num_or(levels->at(i + 1), "ts_us", 0))
                                 : ~std::uint64_t{0};
    if (t1 <= lo_ts || t0 >= hi_ts) continue;  // no overlap
    if (!found) {
      lo_level = hi_level = lv;
      found = true;
    } else {
      hi_level = std::max(hi_level, lv);
    }
  }
  return found;
}

int usage() {
  std::cerr << "usage: sfg_why [--json] [--traversal N] FILE\n"
               "  FILE is an sfg-metrics/1 report with an embedded\n"
               "  sfg-critpath/1 section (run with SFG_SPANS=1)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  long want_traversal = -1;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      as_json = true;
    } else if (a == "--traversal" && i + 1 < argc) {
      char* end = nullptr;
      want_traversal = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || want_traversal < 0) return usage();
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else if (file.empty()) {
      file = a;
    } else {
      return usage();
    }
  }
  if (file.empty()) return usage();

  std::ifstream in(file);
  if (!in) {
    std::cerr << "sfg_why: cannot open " << file << "\n";
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = json::parse(ss.str());
  if (!doc || !doc->is_object()) {
    std::cerr << "sfg_why: " << file << " is not valid JSON\n";
    return 1;
  }
  const json* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "sfg-metrics/1") {
    std::cerr << "sfg_why: " << file << " is not an sfg-metrics/1 report\n";
    return 1;
  }
  const json* traversals = doc->find("traversals");
  if (traversals == nullptr || !traversals->is_array() ||
      traversals->size() == 0) {
    std::cerr << "sfg_why: " << file << " has no traversals\n";
    return 1;
  }

  // Pick the requested traversal, or the last one carrying a critpath.
  const json* entry = nullptr;
  std::size_t which = 0;
  if (want_traversal >= 0) {
    if (static_cast<std::size_t>(want_traversal) >= traversals->size()) {
      std::cerr << "sfg_why: traversal " << want_traversal
                << " out of range (report has " << traversals->size() << ")\n";
      return 1;
    }
    which = static_cast<std::size_t>(want_traversal);
    entry = &traversals->at(which);
  } else {
    for (std::size_t i = 0; i < traversals->size(); ++i) {
      if (const json* c = traversals->at(i).find("critpath");
          c != nullptr && c->is_object()) {
        entry = &traversals->at(i);
        which = i;
      }
    }
  }
  const json* section = entry != nullptr ? entry->find("critpath") : nullptr;
  if (section == nullptr || !section->is_object()) {
    std::cerr << "sfg_why: " << file
              << " has no critpath section (run with SFG_SPANS=1)\n";
    return 1;
  }
  std::vector<std::string> errors;
  if (!sfg::obs::critpath_validate(*section, &errors)) {
    std::cerr << "sfg_why: " << file << " critpath section is invalid:\n";
    for (const auto& e : errors) std::cerr << "  " << e << "\n";
    return 1;
  }

  const double wall_us = num_or(*section, "wall_us", 0);
  const double coverage = num_or(*section, "coverage", 0);

  // Cross-reference inputs from the rest of the report.
  const matrix_ref matrix = [&] {
    matrix_ref m;
    const json* cm = entry->find("comm_matrix");
    if (cm == nullptr || !cm->is_object()) return m;
    const auto n = static_cast<std::size_t>(num_or(*cm, "ranks", 0));
    const json* rows = cm->find("rows");
    if (n == 0 || rows == nullptr || !rows->is_array() || rows->size() != n) {
      return m;
    }
    for (std::size_t r = 0; r < n; ++r) {
      const json* arr = rows->at(r).find("sent_bytes");
      if (arr == nullptr || !arr->is_array() || arr->size() != n) return m;
      std::vector<std::uint64_t> vals;
      for (std::size_t c = 0; c < n; ++c) {
        vals.push_back(arr->at(c).is_number() ? arr->at(c).as_u64() : 0);
      }
      m.sent_bytes.push_back(std::move(vals));
    }
    for (std::size_t o = 0; o < n; ++o) {
      for (std::size_t d = 0; d < n; ++d) {
        if (o != d && m.sent_bytes[o][d] > m.hot_bytes) {
          m.hot_bytes = m.sent_bytes[o][d];
          m.hot_src = static_cast<int>(o);
          m.hot_dst = static_cast<int>(d);
        }
      }
    }
    m.valid = true;
    return m;
  }();
  double read_amp = 0;
  if (const json* metrics = doc->find("metrics");
      metrics != nullptr && metrics->is_object()) {
    if (const json* counters = metrics->find("counters");
        counters != nullptr && counters->is_object()) {
      const double req = num_or(*counters, "cache.bytes_requested", 0);
      const double dev = num_or(*counters, "cache.dev_bytes_read", 0);
      if (req > 0) read_amp = dev / req;
    }
  }

  const json* blame = section->find("blame");
  json out_attr = json::array();
  if (!as_json) {
    std::printf("sfg_why — %s, traversal %zu of %zu\n", file.c_str(), which + 1,
                traversals->size());
    std::printf("wall %s, critical path covers %.1f%%\n",
                human_us(wall_us).c_str(), coverage * 100.0);
  }
  constexpr std::size_t kTopText = 10;
  for (std::size_t i = 0; blame != nullptr && i < blame->size(); ++i) {
    const json& b = blame->at(i);
    const int rank = static_cast<int>(num_or(b, "rank", 0));
    const json* k = b.find("kind");
    const std::string kind =
        (k != nullptr && k->is_string()) ? k->as_string() : "?";
    const double dur_us = num_or(b, "dur_us", 0);
    const double frac = num_or(b, "frac", 0);

    std::string note;
    int wsrc = 0, wdst = 0;
    if (parse_wire_kind(kind, wsrc, wdst) && matrix.valid) {
      const std::uint64_t bytes =
          (static_cast<std::size_t>(wsrc) < matrix.sent_bytes.size() &&
           static_cast<std::size_t>(wdst) < matrix.sent_bytes.size())
              ? matrix.sent_bytes[static_cast<std::size_t>(wsrc)]
                                 [static_cast<std::size_t>(wdst)]
              : 0;
      if (wsrc == matrix.hot_src && wdst == matrix.hot_dst) {
        note = "the max-pair channel (" +
               human_bytes(static_cast<double>(bytes)) + ")";
      } else {
        note = human_bytes(static_cast<double>(bytes)) + " (max pair " +
               std::to_string(matrix.hot_src) + "->" +
               std::to_string(matrix.hot_dst) + ")";
      }
    } else if (kind == "io_wait" && read_amp > 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "read-amp %.2fx", read_amp);
      note = buf;
    }
    std::uint64_t lo_level = 0, hi_level = 0;
    const bool has_levels = level_range(*section, rank, kind, lo_level, hi_level);
    std::string at_levels;
    if (has_levels) {
      at_levels = lo_level == hi_level
                      ? "level " + std::to_string(lo_level)
                      : "levels " + std::to_string(lo_level) + "-" +
                            std::to_string(hi_level);
    }

    if (as_json) {
      json e = json::object();
      e["rank"] = static_cast<std::int64_t>(rank);
      e["kind"] = kind;
      e["dur_us"] = dur_us;
      e["frac"] = frac;
      if (has_levels) {
        e["level_lo"] = lo_level;
        e["level_hi"] = hi_level;
      }
      if (!note.empty()) e["note"] = note;
      out_attr.push_back(std::move(e));
    } else if (i < kTopText) {
      std::string detail;
      if (!at_levels.empty()) detail += at_levels;
      if (!note.empty()) {
        if (!detail.empty()) detail += ", ";
        detail += note;
      }
      std::printf("  %5.1f%%  rank %-3d %-12s %10s  %s\n", frac * 100.0, rank,
                  kind.c_str(), human_us(dur_us).c_str(), detail.c_str());
    }
  }
  if (as_json) {
    json out = json::object();
    out["file"] = file;
    out["traversal"] = static_cast<std::uint64_t>(which);
    out["wall_us"] = wall_us;
    out["coverage"] = coverage;
    out["attribution"] = std::move(out_attr);
    std::printf("%s\n", out.dump().c_str());
  } else if (blame != nullptr && blame->size() > kTopText) {
    std::printf("  ... %zu more blame entr%s (use --json for all)\n",
                blame->size() - kTopText,
                blame->size() - kTopText == 1 ? "y" : "ies");
  }
  std::fflush(stdout);
  return 0;
}
